package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"crowdwifi/internal/obs/trace"
	"crowdwifi/internal/retry"
	"crowdwifi/internal/server"
)

// The headline tracing guarantee (ISSUE PR 4): one logical vehicle upload is
// ONE trace, end to end — every client retry attempt, the server-side dedupe
// check, and the WAL append that makes the report durable all land in the
// same trace, retrievable over /debug/traces/{id}.

// failFirstN fails the first n requests with a transport error, then passes
// through.
type failFirstN struct {
	remaining atomic.Int32
	next      HTTPDoer
}

func (d *failFirstN) Do(req *http.Request) (*http.Response, error) {
	if d.remaining.Add(-1) >= 0 {
		return nil, errors.New("link down")
	}
	return d.next.Do(req)
}

// traceRig is one vehicle + durable server pair sharing a single tracer, so
// client-side and server-side span fragments merge in one store.
func newTraceRig(t *testing.T, doer HTTPDoer) (context.Context, *CrowdVehicle, *httptest.Server, *trace.Tracer) {
	t.Helper()
	tracer := trace.NewTracer(trace.Config{SampleRate: 1})
	store, _, err := server.OpenStore(10, server.StorageOptions{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	ts := httptest.NewServer(server.New(store, server.WithTracer(tracer)))
	t.Cleanup(ts.Close)

	v := &CrowdVehicle{ID: "trace-veh", BaseURL: ts.URL, HTTP: doer, Outbox: NewOutbox(8)}
	return trace.WithTracer(context.Background(), tracer), v, ts, tracer
}

// fetchTrace retrieves one assembled trace over the wire.
func fetchTrace(t *testing.T, baseURL, id string) trace.TraceData {
	t.Helper()
	resp, err := http.Get(baseURL + "/debug/traces/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/traces/%s: status %d", id, resp.StatusCode)
	}
	var tr trace.TraceData
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	return tr
}

// spansNamed returns the spans with the given name.
func spansNamed(tr trace.TraceData, name string) []trace.SpanData {
	var out []trace.SpanData
	for _, s := range tr.Spans {
		if s.Name == name {
			out = append(out, s)
		}
	}
	return out
}

func TestUploadTraceSpansRetriesDedupeAndWAL(t *testing.T) {
	// Two transport failures before success: the upload takes three retry
	// attempts, all under one root span.
	inner := &failFirstN{next: http.DefaultClient}
	inner.remaining.Store(2)
	doer := retry.NewDoer(inner,
		retry.Policy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond})
	ctx, v, ts, tracer := newTraceRig(t, doer)

	rep := server.Report{Vehicle: v.ID, Segment: "seg-T",
		APs: []server.APReport{{X: 100, Y: 50, Credit: 3}}}
	if err := v.postJSON(ctx, "/v1/reports", rep, nil, true); err != nil {
		t.Fatalf("upload: %v", err)
	}

	recent := tracer.Store().Recent()
	if len(recent) != 1 {
		t.Fatalf("retained traces = %d, want exactly 1 (one logical upload = one trace)", len(recent))
	}
	if recent[0].Root != "client.upload /v1/reports" {
		t.Fatalf("root = %q, want client.upload /v1/reports", recent[0].Root)
	}

	tr := fetchTrace(t, ts.URL, recent[0].ID)
	if tr.ID != recent[0].ID {
		t.Fatalf("trace id = %q, want %q", tr.ID, recent[0].ID)
	}
	if attempts := spansNamed(tr, "retry.attempt"); len(attempts) != 3 {
		t.Fatalf("retry.attempt spans = %d, want 3 (two failures + success)", len(attempts))
	}
	for _, name := range []string{
		"client.upload /v1/reports", // root
		"retry.attempt",             // per-attempt client spans
		"server POST /v1/reports",   // remote continuation
		"server.dedupe",             // idempotency check
		"store.add_report",          // mutator
		"wal.append",                // durability
	} {
		spans := spansNamed(tr, name)
		if len(spans) == 0 {
			t.Errorf("trace is missing span %q", name)
			continue
		}
		for _, s := range spans {
			if s.DurationNS <= 0 {
				t.Errorf("span %q has non-positive duration %d", name, s.DurationNS)
			}
			if s.TraceID != tr.ID {
				t.Errorf("span %q carries trace id %q, want %q", name, s.TraceID, tr.ID)
			}
		}
	}

	// The two failed attempts carry error status; the trace as a whole is
	// flagged so tail retention keeps it.
	if !tr.Error {
		t.Error("trace with failed attempts not flagged as error")
	}
	var failed int
	for _, s := range spansNamed(tr, "retry.attempt") {
		if s.Error != "" {
			failed++
		}
	}
	if failed != 2 {
		t.Errorf("failed retry.attempt spans = %d, want 2", failed)
	}
}

func TestOutboxDrainContinuesUploadTrace(t *testing.T) {
	// Every live attempt fails: the upload parks in the outbox. The later
	// drain (new context, working link) must rejoin the original trace via
	// the persisted traceparent — one logical upload, one trace, across the
	// queue boundary.
	down := &failFirstN{next: http.DefaultClient}
	down.remaining.Store(1 << 30)
	ctx, v, ts, tracer := newTraceRig(t, down)

	rep := server.Report{Vehicle: v.ID, Segment: "seg-Q",
		APs: []server.APReport{{X: 200, Y: 80, Credit: 2}}}
	if err := v.postJSON(ctx, "/v1/reports", rep, nil, true); !errors.Is(err, ErrQueued) {
		t.Fatalf("upload err = %v, want ErrQueued", err)
	}

	// Contact window: the link comes back and a fresh drain context (as the
	// shutdown flush uses) delivers the queued report.
	v.HTTP = retry.NewDoer(nil, retry.Policy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond})
	dctx := trace.WithTracer(context.Background(), tracer)
	if n, err := v.DrainOutbox(dctx); err != nil || n != 1 {
		t.Fatalf("drain = (%d, %v), want (1, nil)", n, err)
	}

	recent := tracer.Store().Recent()
	if len(recent) != 1 {
		t.Fatalf("retained traces = %d, want 1 (drain must not mint a fresh trace)", len(recent))
	}
	tr := fetchTrace(t, ts.URL, recent[0].ID)
	if tr.Root != "client.upload /v1/reports" {
		t.Fatalf("root = %q, want the original upload span", tr.Root)
	}
	for _, name := range []string{"client.drain /v1/reports", "retry.attempt", "server POST /v1/reports", "wal.append"} {
		if len(spansNamed(tr, name)) == 0 {
			t.Errorf("merged trace is missing span %q", name)
		}
	}
}
