package client

import (
	"sync"
	"time"
)

// DefaultOutboxCapacity bounds a zero-configured outbox.
const DefaultOutboxCapacity = 256

// Entry is one parked upload: the request path, the marshalled JSON payload,
// and the idempotency key minted for the original attempt. Replays reuse the
// key, so the server deduplicates an entry whose original attempt was
// actually processed (a response lost in transit).
type Entry struct {
	Path       string
	Body       []byte
	Key        string
	EnqueuedAt time.Time
	// ContentType is the parked body's wire format ("" means JSON); replays
	// send it back verbatim so a binary-codec upload drains as binary.
	ContentType string
	// Traceparent preserves the originating upload's trace context so the
	// eventual drain attempt joins the same trace (one logical request, one
	// trace, even across a queue-and-drain gap).
	Traceparent string
}

// Outbox is a bounded FIFO store-and-forward queue for uploads that could
// not be delivered. When full, the oldest entry is evicted — in a
// crowdsensing pipeline fresh observations are worth more than stale ones.
// All methods are safe for concurrent use.
type Outbox struct {
	mu       sync.Mutex
	entries  []Entry
	capacity int
	evicted  uint64
	now      func() time.Time
}

// NewOutbox returns an empty outbox holding at most capacity entries
// (≤ 0 selects DefaultOutboxCapacity).
func NewOutbox(capacity int) *Outbox {
	if capacity <= 0 {
		capacity = DefaultOutboxCapacity
	}
	return &Outbox{capacity: capacity, now: time.Now}
}

// Len reports the number of queued entries.
func (o *Outbox) Len() int {
	if o == nil {
		return 0
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.entries)
}

// OldestAge reports how long the head entry has been waiting (0 when empty).
func (o *Outbox) OldestAge() time.Duration {
	if o == nil {
		return 0
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if len(o.entries) == 0 {
		return 0
	}
	return o.now().Sub(o.entries[0].EnqueuedAt)
}

// Evicted reports how many entries were displaced by capacity pressure.
func (o *Outbox) Evicted() uint64 {
	if o == nil {
		return 0
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.evicted
}

// enqueue parks an upload, evicting the oldest entry when full.
func (o *Outbox) enqueue(e Entry) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if e.EnqueuedAt.IsZero() {
		e.EnqueuedAt = o.now()
	}
	if len(o.entries) >= o.capacity {
		drop := len(o.entries) - o.capacity + 1
		o.entries = append(o.entries[:0], o.entries[drop:]...)
		o.evicted += uint64(drop)
	}
	o.entries = append(o.entries, e)
}

// peek returns the head entry without removing it.
func (o *Outbox) peek() (Entry, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if len(o.entries) == 0 {
		return Entry{}, false
	}
	return o.entries[0], true
}

// dropHead removes the head entry if it still carries key (a concurrent
// drain may have already advanced the queue).
func (o *Outbox) dropHead(key string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if len(o.entries) > 0 && o.entries[0].Key == key {
		o.entries = append(o.entries[:0], o.entries[1:]...)
	}
}

// peekRun returns copies of up to max entries from the head sharing path —
// the contiguous run a batch drain can deliver in one round-trip without
// reordering the FIFO. Empty when the head's path differs.
func (o *Outbox) peekRun(path string, max int) []Entry {
	o.mu.Lock()
	defer o.mu.Unlock()
	var run []Entry
	for _, e := range o.entries {
		if e.Path != path || len(run) >= max {
			break
		}
		run = append(run, e)
	}
	return run
}

// remove deletes the entries carrying the given keys, preserving the order
// of the rest, and returns how many were removed.
func (o *Outbox) remove(keys map[string]bool) int {
	if len(keys) == 0 {
		return 0
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	kept := o.entries[:0]
	removed := 0
	for _, e := range o.entries {
		if keys[e.Key] {
			removed++
			continue
		}
		kept = append(kept, e)
	}
	o.entries = kept
	return removed
}
