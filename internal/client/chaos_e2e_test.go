package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"crowdwifi/internal/chaos"
	"crowdwifi/internal/geo"
	"crowdwifi/internal/obs"
	"crowdwifi/internal/retry"
	"crowdwifi/internal/server"
)

// The headline resilience guarantee (ISSUE PR 2): an end-to-end pipeline run
// under ~30% request loss plus injected 5xx, resets, and truncated bodies
// must lose zero reports and produce byte-identical fused AP output compared
// to a fault-free run. Determinism comes from the seeded fault schedule and
// from the pipeline shape: vehicles act sequentially and every upload is
// fully delivered (outbox drained) before the next one starts, so the
// server's ingestion order matches the fault-free run exactly.

// chaosSeed is pinned to a schedule that draws every fault class at least
// once (drops, resets, 5xx, truncations) — verified by the assertions below.
const chaosSeed = 0xBADC0DE

// chaosFault sums to roughly 30% of requests failing outright (drop + reset)
// with additional 5xx and truncation on top.
var chaosFault = chaos.Fault{
	Drop:      0.18,
	Reset:     0.10,
	Err5xx:    0.10,
	Truncate:  0.05,
	DelayProb: 0.10,
	Delay:     time.Millisecond,
}

// chaosHarshFault is vehicle 3's link — a far worse RF environment where
// three out of four requests fail, so its uploads are all but certain to
// traverse the store-and-forward outbox.
var chaosHarshFault = chaos.Fault{
	Drop:  0.50,
	Reset: 0.25,
}

// chaosAPs are the per-vehicle synthetic AP estimates: everyone observes the
// same two roadside APs with small offsets.
var chaosAPs = [][]server.APReport{
	{{X: 100, Y: 50, Credit: 3}, {X: 200, Y: 80, Credit: 2}},
	{{X: 102, Y: 52, Credit: 3}, {X: 201, Y: 79, Credit: 2}},
	{{X: 98, Y: 49, Credit: 4}, {X: 199, Y: 81, Credit: 1}},
	{{X: 101, Y: 51, Credit: 2}, {X: 202, Y: 78, Credit: 2}},
}

// pipelineRig selects the transports for one pipeline run. Zero value = plain
// http.DefaultClient everywhere (the fault-free baseline).
type pipelineRig struct {
	vehicleDoer func(i int) HTTPDoer // transport for vehicle i
	opsDoer     HTTPDoer             // transport for aggregate/reliability/lookup
	metrics     *Metrics             // client metrics (nil = unmetered)
}

// runChaosPipeline drives propose → report → label → aggregate → lookup for
// four vehicles against a fresh crowd-server and returns the store, the test
// server (open until test cleanup, for /metrics scrapes), and a canonical
// string of the fused lookup output plus the reliability map.
func runChaosPipeline(t *testing.T, rig pipelineRig) (*server.Store, *httptest.Server, string) {
	t.Helper()
	ctx := context.Background()
	store := server.NewStore(10)
	srvMetrics := server.NewMetrics(obs.NewRegistry())
	ts := httptest.NewServer(server.New(store, server.WithMetrics(srvMetrics)))
	t.Cleanup(ts.Close)

	vehicles := make([]*CrowdVehicle, len(chaosAPs))
	for i := range vehicles {
		var doer HTTPDoer
		if rig.vehicleDoer != nil {
			doer = rig.vehicleDoer(i)
		}
		vehicles[i] = &CrowdVehicle{
			ID:      fmt.Sprintf("veh-%d", i),
			BaseURL: ts.URL,
			HTTP:    doer,
			Metrics: rig.metrics,
			Outbox:  NewOutbox(32),
		}
	}

	// Vehicle 0 proposes the constellation as a mapping task. Proposals are
	// not queueable (the caller needs the id), so vehicle 0's transport must
	// retry hard enough to deliver under the seeded fault schedule.
	var created struct {
		ID int `json:"id"`
	}
	p := server.Pattern{Segment: "seg-A", APs: chaosAPs[0]}
	if err := vehicles[0].postJSON(ctx, "/v1/patterns", p, &created, false); err != nil {
		t.Fatalf("propose pattern: %v", err)
	}

	// Sequential per-vehicle flow: pull tasks, submit labels, upload the
	// report — each delivered completely before the next vehicle acts.
	for i, v := range vehicles {
		var tasks []server.Pattern
		for attempt := 0; ; attempt++ {
			var err error
			tasks, err = v.PullTasksContext(ctx, 5)
			if err == nil {
				break
			}
			if attempt > 200 {
				t.Fatalf("vehicle %d: pull tasks: %v", i, err)
			}
		}
		if len(tasks) != 1 || tasks[0].ID != created.ID {
			t.Fatalf("vehicle %d: tasks = %+v, want task %d", i, tasks, created.ID)
		}
		labels := []server.Label{{Vehicle: v.ID, TaskID: created.ID, Value: 1}}
		mustDeliver(t, ctx, v, i, "labels", v.SubmitLabelsContext(ctx, labels))

		rep := server.Report{Vehicle: v.ID, Segment: "seg-A", APs: chaosAPs[i]}
		mustDeliver(t, ctx, v, i, "report", v.postJSON(ctx, "/v1/reports", rep, nil, true))
	}

	// Operator actions and the user-vehicle readback. Aggregation is
	// deterministic over the same inputs, so a retried (reset) aggregate
	// re-runs to the identical state.
	if _, err := AggregateContext(ctx, rig.opsDoer, ts.URL); err != nil {
		t.Fatalf("aggregate: %v", err)
	}
	user := &UserVehicle{BaseURL: ts.URL, HTTP: rig.opsDoer}
	area := geo.NewRect(geo.Point{X: 0, Y: 0}, geo.Point{X: 300, Y: 150})
	var pts []geo.Point
	for attempt := 0; ; attempt++ {
		var err error
		pts, err = user.LookupContext(ctx, area)
		if err == nil {
			break
		}
		if attempt > 200 {
			t.Fatalf("lookup: %v", err)
		}
	}
	var rel map[string]float64
	for attempt := 0; ; attempt++ {
		var err error
		rel, err = ReliabilityContext(ctx, rig.opsDoer, ts.URL)
		if err == nil {
			break
		}
		if attempt > 200 {
			t.Fatalf("reliability: %v", err)
		}
	}

	fused, err := json.Marshal(pts)
	if err != nil {
		t.Fatal(err)
	}
	relJSON, err := json.Marshal(rel) // map keys sort deterministically
	if err != nil {
		t.Fatal(err)
	}
	return store, ts, string(fused) + "\n" + string(relJSON)
}

// mustDeliver requires an upload to reach the server in this contact window:
// either the call succeeded outright or it was queued and the outbox drains
// to empty (each drain pass retries under the same fault schedule).
func mustDeliver(t *testing.T, ctx context.Context, v *CrowdVehicle, i int, what string, err error) {
	t.Helper()
	if err == nil {
		return
	}
	if !errors.Is(err, ErrQueued) {
		t.Fatalf("vehicle %d: %s failed without queueing: %v", i, what, err)
	}
	for attempt := 0; v.Outbox.Len() > 0; attempt++ {
		if attempt > 500 {
			t.Fatalf("vehicle %d: %s stuck in outbox", i, what)
		}
		if _, derr := v.DrainOutbox(ctx); derr != nil && !transientError(derr) {
			t.Fatalf("vehicle %d: drain: %v", i, derr)
		}
	}
}

func TestChaosPipelineZeroLossByteIdenticalFusion(t *testing.T) {
	// Fault-free baseline.
	baseStore, _, baseline := runChaosPipeline(t, pipelineRig{})

	// Chaos rig: every path crosses a seeded injector. Vehicles 0–2 get the
	// full resilience stack (retry + breaker + budget over the injector);
	// vehicle 3 gets the injector bare, so every fault it draws exercises the
	// store-and-forward outbox. The ops transport retries hard because
	// aggregate/lookup have no outbox to fall back on.
	reg := obs.NewRegistry()
	clientMetrics := NewMetrics(reg)
	retryMetrics := retry.NewMetrics(reg)
	breaker := retry.NewBreaker(retry.BreakerConfig{
		Threshold:     64, // stays closed under this schedule; breaker trips have their own tests
		Cooldown:      5 * time.Millisecond,
		OnStateChange: retryMetrics.BreakerHook(),
	})
	policy := retry.Policy{MaxAttempts: 12, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond}
	var injectors []*chaos.Injector
	mkInjector := func(f chaos.Fault, seed uint64) *chaos.Injector {
		inj := chaos.NewInjector(http.DefaultClient, f, seed)
		injectors = append(injectors, inj)
		return inj
	}
	rig := pipelineRig{
		metrics: clientMetrics,
		vehicleDoer: func(i int) HTTPDoer {
			if i == 3 {
				return mkInjector(chaosHarshFault, chaosSeed+uint64(i))
			}
			inj := mkInjector(chaosFault, chaosSeed+uint64(i))
			return retry.NewDoer(inj, policy,
				retry.WithBreaker(breaker),
				retry.WithBudget(retry.BudgetConfig{Ratio: 2, Burst: 100}),
				retry.WithMetrics(retryMetrics))
		},
		opsDoer: retry.NewDoer(mkInjector(chaosFault, chaosSeed+100), policy, retry.WithMetrics(retryMetrics)),
	}
	chaosStore, chaosTS, chaosOut := runChaosPipeline(t, rig)

	// Zero lost ingestion: identical stored volumes, nothing dropped.
	bp, bl, br := baseStore.Counts()
	cp, cl, cr := chaosStore.Counts()
	if cp != bp || cl != bl || cr != br {
		t.Errorf("chaos stored (patterns,labels,reports) = (%d,%d,%d), baseline (%d,%d,%d)",
			cp, cl, cr, bp, bl, br)
	}
	if cr != len(chaosAPs) {
		t.Errorf("reports = %d, want %d (zero loss)", cr, len(chaosAPs))
	}

	// Byte-identical fused output and reliability map.
	if chaosOut != baseline {
		t.Errorf("fused output diverged under chaos:\nchaos:    %s\nbaseline: %s", chaosOut, baseline)
	}

	// The run must actually have been hostile: faults were injected, and at
	// least one reset/truncation forced the server-side idempotency cache to
	// answer a replay (the exactly-once machinery, not luck).
	var drops, resets, errs, truncs int
	for _, inj := range injectors {
		d, r, e, tr, _ := inj.Counts()
		drops, resets, errs, truncs = drops+d, resets+r, errs+e, truncs+tr
	}
	t.Logf("injected faults: drops=%d resets=%d errs=%d truncs=%d", drops, resets, errs, truncs)
	if drops+resets+errs+truncs < 10 {
		t.Errorf("only %d faults injected; the schedule is too tame to prove anything",
			drops+resets+errs+truncs)
	}
	if drops < 1 || resets < 1 || errs < 1 || truncs < 1 {
		t.Errorf("every fault class must fire at least once: drops=%d resets=%d errs=%d truncs=%d",
			drops, resets, errs, truncs)
	}
	srvExp := scrapeMetrics(t, chaosTS.URL)
	if v := seriesValue(t, srvExp, "crowdwifi_server_deduped_requests_total"); v < 1 {
		t.Errorf("server deduped_requests_total = %v, want >= 1 (no replay was deduplicated)", v)
	}

	// The client-side registry exposes the resilience series with activity on
	// them: retries happened, the outbox queued and drained, the breaker
	// gauge is published.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	clientExp := sb.String()
	if v := seriesValue(t, clientExp, "crowdwifi_retry_retries_total"); v < 1 {
		t.Errorf("retry_retries_total = %v, want >= 1", v)
	}
	if v := seriesValue(t, clientExp, "crowdwifi_client_outbox_enqueued_total"); v < 1 {
		t.Errorf("outbox_enqueued_total = %v, want >= 1", v)
	}
	drained := seriesValue(t, clientExp, "crowdwifi_client_outbox_drained_total")
	enqueued := seriesValue(t, clientExp, "crowdwifi_client_outbox_enqueued_total")
	if drained != enqueued {
		t.Errorf("outbox drained = %v, enqueued = %v: entries were lost or dropped", drained, enqueued)
	}
	for _, series := range []string{
		"crowdwifi_breaker_state",
		"crowdwifi_retry_exhausted_total",
		"crowdwifi_client_outbox_depth",
	} {
		if !strings.Contains(clientExp, series) {
			t.Errorf("client exposition missing %s", series)
		}
	}
}

// scrapeMetrics fetches /metrics (client package has no access to the server
// package's test helpers).
func scrapeMetrics(t *testing.T, baseURL string) string {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// seriesValue extracts the sample value for a series name (plus optional
// label prefix) from a Prometheus text exposition.
func seriesValue(t *testing.T, exposition, prefix string) float64 {
	t.Helper()
	for _, line := range strings.Split(exposition, "\n") {
		if !strings.HasPrefix(line, prefix+" ") {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(strings.TrimPrefix(line, prefix+" "), "%g", &v); err != nil {
			t.Fatalf("series %s: bad value in %q: %v", prefix, line, err)
		}
		return v
	}
	t.Fatalf("series %s not found in exposition:\n%s", prefix, exposition)
	return 0
}
