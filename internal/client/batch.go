package client

// Batch uploads: UploadReportBatch posts many reports in one round-trip
// through POST /v1/reports/batch, and DrainOutbox (with BatchSize > 1)
// flushes contiguous runs of parked reports the same way. Both speak the
// binary frame codec on the wire — the batch endpoint exists to amortize
// round-trips, and frames amortize encoding — and classify each entry from
// the response's per-entry status vector with the same terminal-vs-transient
// rules as single uploads.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"crowdwifi/internal/obs/trace"
	"crowdwifi/internal/server"
)

// reportsPath is the single-report upload route; the batch route appends
// /batch.
const (
	reportsPath = "/v1/reports"
	batchPath   = "/v1/reports/batch"
)

// BatchOutcome summarizes one batch upload: Acked entries are durably
// stored (or replayed), Queued entries are parked in the Outbox for a later
// drain, Failed entries were rejected terminally.
type BatchOutcome struct {
	Acked  int
	Queued int
	Failed int
}

// UploadReportBatch posts several reports in one round-trip. Each entry
// gets its own idempotency key, embedded in its frame, so a replayed batch
// deduplicates entry by entry. Per-entry transient rejections — and a
// transient whole-request failure — park the affected entries individually
// in the Outbox (ErrQueued); terminal rejections count as Failed.
func (v *CrowdVehicle) UploadReportBatch(ctx context.Context, reps []server.Report) (BatchOutcome, error) {
	var out BatchOutcome
	if len(reps) == 0 {
		return out, nil
	}
	keys := make([]string, len(reps))
	var body []byte
	var err error
	for i, rep := range reps {
		keys[i] = v.nextIdempotencyKey()
		if body, err = server.EncodeReportFrame(body, keys[i], rep); err != nil {
			return out, err
		}
	}

	ctx, span := trace.Start(ctx, "client.upload "+batchPath)
	defer span.End()
	span.SetAttr("entries", len(reps))
	span.SetAttr("bytes", len(body))

	var resp server.BatchResponse
	err = sendBody(ctx, v.Metrics, v.httpDoer(), http.MethodPost, v.BaseURL+batchPath, server.FrameContentType, body, "", &resp)
	if err != nil {
		span.SetError(err)
		if v.Outbox != nil && transientError(err) {
			for i, rep := range reps {
				v.parkReport(keys[i], rep, span.Traceparent())
			}
			out.Queued = len(reps)
			span.AddEvent("queued to outbox")
			return out, fmt.Errorf("%w: %s (cause: %v)", ErrQueued, batchPath, err)
		}
		out.Failed = len(reps)
		return out, err
	}

	byKey := make(map[string]int, len(resp.Results))
	for _, st := range resp.Results {
		byKey[st.Key] = st.Status
	}
	for i, rep := range reps {
		st := byKey[keys[i]]
		switch {
		case st >= 200 && st < 300:
			out.Acked++
		case st != 0 && !retryableStatus(st):
			out.Failed++
		default:
			// Transient per-entry rejection, or no verdict at all: the
			// entry's fate is unknown or retryable, so park it.
			if v.Outbox != nil {
				v.parkReport(keys[i], rep, span.Traceparent())
				out.Queued++
			} else {
				out.Failed++
			}
		}
	}
	if out.Queued > 0 {
		v.Metrics.setOutbox(v.Outbox.Len(), v.Outbox.OldestAge().Seconds())
		err = fmt.Errorf("%w: %s (%d of %d entries deferred)", ErrQueued, batchPath, out.Queued, len(reps))
		span.AddEvent("queued to outbox")
	} else if out.Failed > 0 {
		err = fmt.Errorf("client: %s: %d of %d entries rejected", batchPath, out.Failed, len(reps))
		span.SetError(err)
	}
	return out, err
}

// parkReport queues one report as a single-upload outbox entry: the body is
// a key-less report frame and the key rides in Entry.Key, so the entry can
// drain either singly (key in the header) or re-framed into a batch.
func (v *CrowdVehicle) parkReport(key string, rep server.Report, traceparent string) {
	body, err := server.EncodeReportFrame(nil, "", rep)
	if err != nil {
		return
	}
	v.Outbox.enqueue(Entry{
		Path:        reportsPath,
		Body:        body,
		Key:         key,
		ContentType: server.FrameContentType,
		Traceparent: traceparent,
	})
	v.Metrics.incOutboxEnqueued()
}

// entryReport recovers the server.Report a parked entry carries, whatever
// codec it was parked in.
func entryReport(e Entry) (server.Report, error) {
	if e.ContentType == server.FrameContentType {
		frames, err := server.SplitReportFrames(e.Body)
		if err != nil {
			return server.Report{}, err
		}
		if len(frames) != 1 {
			return server.Report{}, fmt.Errorf("client: outbox entry holds %d frames, want 1", len(frames))
		}
		return frames[0].Report, nil
	}
	var rep server.Report
	if err := json.Unmarshal(e.Body, &rep); err != nil {
		return server.Report{}, err
	}
	return rep, nil
}

// drainBatch delivers a contiguous run of parked reports through the batch
// endpoint and settles each entry from the response's status vector:
// accepted entries leave the queue as drained, terminal rejections leave it
// as dropped poison, transient rejections stay parked. The returned error
// is nil when every surviving entry may batch again immediately, transient
// when the drain should pause, and terminal (non-transient) when the whole
// batch was rejected and the caller should fall back to single entries.
func (v *CrowdVehicle) drainBatch(ctx context.Context, run []Entry) (int, error) {
	var body []byte
	poison := map[string]bool{}
	live := run[:0]
	for _, e := range run {
		rep, err := entryReport(e)
		if err != nil {
			// An undecodable entry is client-side poison: drop it so the
			// queue advances.
			poison[e.Key] = true
			continue
		}
		if body, err = server.EncodeReportFrame(body, e.Key, rep); err != nil {
			poison[e.Key] = true
			continue
		}
		live = append(live, e)
	}
	for range poison {
		v.Metrics.incOutboxDropped()
	}
	v.Outbox.remove(poison)
	if len(live) == 0 {
		v.syncOutboxGauges()
		return 0, nil
	}

	dctx, span := trace.Resume(ctx, "client.drain "+batchPath, live[0].Traceparent)
	span.SetAttr("entries", len(live))
	span.SetAttr("queued_for", v.Outbox.OldestAge().String())
	var resp server.BatchResponse
	err := sendBody(dctx, v.Metrics, v.httpDoer(), http.MethodPost, v.BaseURL+batchPath, server.FrameContentType, body, "", &resp)
	span.SetError(err)
	span.End()
	if err != nil {
		v.syncOutboxGauges()
		return 0, err
	}

	byKey := make(map[string]int, len(resp.Results))
	for _, st := range resp.Results {
		byKey[st.Key] = st.Status
	}
	settled := map[string]bool{}
	drained, kept := 0, 0
	for _, e := range live {
		st := byKey[e.Key]
		switch {
		case st >= 200 && st < 300:
			settled[e.Key] = true
			drained++
			v.Metrics.incOutboxDrained()
		case st != 0 && !retryableStatus(st):
			settled[e.Key] = true
			v.Metrics.incOutboxDropped()
		default:
			// Transient rejection or missing verdict: stays parked.
			kept++
		}
	}
	v.Outbox.remove(settled)
	v.syncOutboxGauges()
	if kept > 0 {
		// Some entries must wait; surface a transient error so the drain
		// loop pauses instead of hammering the same rejections.
		return drained, fmt.Errorf("client: %s: %d entries deferred by the server", batchPath, kept)
	}
	return drained, nil
}
