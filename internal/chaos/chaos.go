// Package chaos provides deterministic, seedable fault injection for the
// vehicle↔server HTTP path. The paper's Section 6.3 connectivity experiment
// measures exactly how brief and unreliable roadside contact windows are;
// this package lets tests reproduce that network — dropped requests, delays,
// injected 5xx, truncated response bodies, and connections reset after the
// server already processed the request — with a fixed seed, so resilience
// guarantees (retry, outbox, exactly-once ingestion) are provable rather
// than flake-prone.
//
// The client-side Injector wraps any HTTPDoer (or serves as an
// http.RoundTripper); the server-side Middleware wraps an http.Handler.
package chaos

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"crowdwifi/internal/rng"
)

// HTTPDoer abstracts *http.Client, matching internal/client and
// internal/retry.
type HTTPDoer interface {
	Do(req *http.Request) (*http.Response, error)
}

// Injected fault errors, distinguishable from real transport failures.
var (
	// ErrDrop models a request lost before reaching the server.
	ErrDrop = errors.New("chaos: injected request drop")
	// ErrReset models a connection reset after the server processed the
	// request — the client never sees the response. This is the case that
	// forces idempotent ingestion: a retry re-delivers a request the server
	// already applied.
	ErrReset = errors.New("chaos: injected connection reset")
	// ErrTruncated is what a reader returns past the injected cut.
	ErrTruncated = errors.New("chaos: injected truncated body")
)

// Fault configures injection probabilities. All independent; evaluated per
// request in a fixed order (delay, drop, send, reset, 5xx, truncate) with a
// fixed number of random draws per request, so a given seed yields the same
// fault schedule regardless of outcomes.
type Fault struct {
	// Drop is the probability the request never reaches the server.
	Drop float64
	// Reset is the probability the response is lost after the server
	// processed the request.
	Reset float64
	// Err5xx is the probability the response is replaced with a 503.
	Err5xx float64
	// Truncate is the probability the response body is cut in half
	// mid-stream.
	Truncate float64
	// DelayProb is the probability of an added Delay before the request.
	DelayProb float64
	// Delay is the injected latency (default 1 ms when DelayProb > 0).
	Delay time.Duration
	// RetryAfterSeconds, when > 0, is advertised on injected 503s.
	RetryAfterSeconds int
}

func (f Fault) withDefaults() Fault {
	if f.DelayProb > 0 && f.Delay <= 0 {
		f.Delay = time.Millisecond
	}
	return f
}

// decisions is one request's pre-drawn fault plan.
type decisions struct {
	delay, drop, reset, err5xx, truncate bool
}

// roller draws a fixed five Bernoulli samples per request under a lock, so
// concurrent callers interleave whole plans, never partial ones.
type roller struct {
	mu  sync.Mutex
	rng *rng.RNG
	f   Fault
}

func newRoller(f Fault, seed uint64) *roller {
	return &roller{rng: rng.New(seed), f: f.withDefaults()}
}

func (r *roller) roll() decisions {
	r.mu.Lock()
	defer r.mu.Unlock()
	return decisions{
		delay:    r.rng.Bernoulli(r.f.DelayProb),
		drop:     r.rng.Bernoulli(r.f.Drop),
		reset:    r.rng.Bernoulli(r.f.Reset),
		err5xx:   r.rng.Bernoulli(r.f.Err5xx),
		truncate: r.rng.Bernoulli(r.f.Truncate),
	}
}

// Injector is a fault-injecting HTTPDoer wrapping another doer.
type Injector struct {
	next HTTPDoer
	r    *roller

	injected struct {
		mu                                  sync.Mutex
		drops, resets, errs, truncs, delays int
	}
}

// NewInjector wraps next (nil selects http.DefaultClient) with the fault
// plan seeded by seed.
func NewInjector(next HTTPDoer, f Fault, seed uint64) *Injector {
	if next == nil {
		next = http.DefaultClient
	}
	return &Injector{next: next, r: newRoller(f, seed)}
}

// Counts reports how many faults of each kind were injected so far.
func (i *Injector) Counts() (drops, resets, errs, truncs, delays int) {
	i.injected.mu.Lock()
	defer i.injected.mu.Unlock()
	return i.injected.drops, i.injected.resets, i.injected.errs, i.injected.truncs, i.injected.delays
}

func (i *Injector) count(field *int) {
	i.injected.mu.Lock()
	*field++
	i.injected.mu.Unlock()
}

// Do implements HTTPDoer with injected faults.
func (i *Injector) Do(req *http.Request) (*http.Response, error) {
	d := i.r.roll()
	if d.delay {
		i.count(&i.injected.delays)
		t := time.NewTimer(i.r.f.Delay)
		select {
		case <-t.C:
		case <-req.Context().Done():
			t.Stop()
			return nil, req.Context().Err()
		}
	}
	if d.drop {
		i.count(&i.injected.drops)
		return nil, fmt.Errorf("%s %s: %w", req.Method, req.URL.Path, ErrDrop)
	}
	resp, err := i.next.Do(req)
	if err != nil {
		return nil, err
	}
	if d.reset {
		i.count(&i.injected.resets)
		// The server handled the request; the client loses the response.
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
		return nil, fmt.Errorf("%s %s: %w", req.Method, req.URL.Path, ErrReset)
	}
	if d.err5xx {
		i.count(&i.injected.errs)
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
		return inject503(req, i.r.f.RetryAfterSeconds), nil
	}
	if d.truncate {
		i.count(&i.injected.truncs)
		resp.Body = truncateBody(resp.Body, resp.ContentLength)
	}
	return resp, nil
}

// RoundTrip implements http.RoundTripper, so the injector can sit inside an
// *http.Client as its Transport.
func (i *Injector) RoundTrip(req *http.Request) (*http.Response, error) {
	return i.Do(req)
}

var _ http.RoundTripper = (*Injector)(nil)

// inject503 fabricates a 503 response in place of the real one.
func inject503(req *http.Request, retryAfterSeconds int) *http.Response {
	h := http.Header{}
	h.Set("Content-Type", "text/plain; charset=utf-8")
	if retryAfterSeconds > 0 {
		h.Set("Retry-After", strconv.Itoa(retryAfterSeconds))
	}
	body := "chaos: injected 503\n"
	return &http.Response{
		Status:        "503 Service Unavailable",
		StatusCode:    http.StatusServiceUnavailable,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        h,
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// truncateBody returns a reader that yields roughly half the body (at least
// one byte) and then fails with ErrTruncated, modelling a transfer cut off
// by the vehicle leaving the AP's range.
func truncateBody(body io.ReadCloser, contentLength int64) io.ReadCloser {
	limit := contentLength / 2
	if limit <= 0 {
		limit = 16 // unknown length: allow a prefix then cut
	}
	return &truncatedReader{inner: body, remaining: limit}
}

type truncatedReader struct {
	inner     io.ReadCloser
	remaining int64
}

func (t *truncatedReader) Read(p []byte) (int, error) {
	if t.remaining <= 0 {
		return 0, ErrTruncated
	}
	if int64(len(p)) > t.remaining {
		p = p[:t.remaining]
	}
	n, err := t.inner.Read(p)
	t.remaining -= int64(n)
	if err == io.EOF {
		// The real body ended before the cut; pass EOF through untouched.
		return n, err
	}
	if t.remaining <= 0 && err == nil {
		err = ErrTruncated
	}
	return n, err
}

func (t *truncatedReader) Close() error { return t.inner.Close() }

// Middleware wraps next with server-side fault injection: injected delays,
// 503s with Retry-After sent before the handler runs (load shedding), and
// connection resets after the handler ran (the response is computed, then
// the socket is closed — the client must treat it as unknown-outcome and
// retry idempotently). Drop behaves like Err5xx server-side; Truncate is
// client-only and ignored here.
func Middleware(next http.Handler, f Fault, seed uint64) http.Handler {
	r := newRoller(f, seed)
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		d := r.roll()
		if d.delay {
			time.Sleep(r.f.Delay)
		}
		if d.drop || d.err5xx {
			if r.f.RetryAfterSeconds > 0 {
				w.Header().Set("Retry-After", strconv.Itoa(r.f.RetryAfterSeconds))
			}
			http.Error(w, "chaos: injected 503", http.StatusServiceUnavailable)
			return
		}
		if d.reset {
			next.ServeHTTP(newDiscardWriter(), req)
			if hj, ok := w.(http.Hijacker); ok {
				if conn, _, err := hj.Hijack(); err == nil {
					conn.Close()
					return
				}
			}
			// No hijack support: the closest observable effect is a 503
			// after the handler already ran.
			http.Error(w, "chaos: injected post-processing failure", http.StatusServiceUnavailable)
			return
		}
		next.ServeHTTP(w, req)
	})
}

// discardWriter satisfies the handler while throwing the response away.
type discardWriter struct {
	h http.Header
}

func newDiscardWriter() *discardWriter { return &discardWriter{h: http.Header{}} }

func (d *discardWriter) Header() http.Header         { return d.h }
func (d *discardWriter) Write(p []byte) (int, error) { return len(p), nil }
func (d *discardWriter) WriteHeader(int)             {}
