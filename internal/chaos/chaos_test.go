package chaos

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
)

func countingServer(t *testing.T) (*atomic.Int64, *httptest.Server) {
	t.Helper()
	var handled atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		handled.Add(1)
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"status":"ok","padding":"0123456789abcdef0123456789abcdef"}`))
	}))
	t.Cleanup(ts.Close)
	return &handled, ts
}

func get(t *testing.T, d HTTPDoer, url string) (*http.Response, error) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	return d.Do(req)
}

func TestInjectorDeterministicSchedule(t *testing.T) {
	// Two injectors with the same seed must inject the identical fault
	// sequence; a different seed must differ somewhere.
	faultSeq := func(seed uint64) []string {
		handled, ts := countingServer(t)
		_ = handled
		inj := NewInjector(http.DefaultClient, Fault{Drop: 0.3, Reset: 0.2, Err5xx: 0.2}, seed)
		var seq []string
		for k := 0; k < 40; k++ {
			resp, err := get(t, inj, ts.URL)
			switch {
			case errors.Is(err, ErrDrop):
				seq = append(seq, "drop")
			case errors.Is(err, ErrReset):
				seq = append(seq, "reset")
			case err != nil:
				t.Fatal(err)
			case resp.StatusCode == http.StatusServiceUnavailable:
				seq = append(seq, "503")
				resp.Body.Close()
			default:
				seq = append(seq, "ok")
				resp.Body.Close()
			}
		}
		return seq
	}
	a, b, c := faultSeq(42), faultSeq(42), faultSeq(43)
	if len(a) != len(b) {
		t.Fatal("length mismatch")
	}
	same := true
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %s vs %s", i, a[i], b[i])
		}
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced the identical 40-request schedule")
	}
}

func TestInjectorDropNeverReachesServer(t *testing.T) {
	handled, ts := countingServer(t)
	inj := NewInjector(http.DefaultClient, Fault{Drop: 1}, 1)
	if _, err := get(t, inj, ts.URL); !errors.Is(err, ErrDrop) {
		t.Fatalf("err = %v, want ErrDrop", err)
	}
	if handled.Load() != 0 {
		t.Fatal("dropped request reached the server")
	}
	drops, _, _, _, _ := inj.Counts()
	if drops != 1 {
		t.Fatalf("drops = %d", drops)
	}
}

func TestInjectorResetAfterProcessing(t *testing.T) {
	handled, ts := countingServer(t)
	inj := NewInjector(http.DefaultClient, Fault{Reset: 1}, 1)
	if _, err := get(t, inj, ts.URL); !errors.Is(err, ErrReset) {
		t.Fatalf("err = %v, want ErrReset", err)
	}
	// The crucial asymmetry vs. Drop: the server DID process the request.
	if handled.Load() != 1 {
		t.Fatalf("server handled %d requests, want 1", handled.Load())
	}
}

func TestInjector503CarriesRetryAfter(t *testing.T) {
	handled, ts := countingServer(t)
	inj := NewInjector(http.DefaultClient, Fault{Err5xx: 1, RetryAfterSeconds: 3}, 1)
	resp, err := get(t, inj, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "3" {
		t.Fatalf("Retry-After = %q, want \"3\"", got)
	}
	if handled.Load() != 1 {
		t.Fatal("injected 503 should replace a processed response")
	}
}

func TestInjectorTruncatedBody(t *testing.T) {
	_, ts := countingServer(t)
	inj := NewInjector(http.DefaultClient, Fault{Truncate: 1}, 1)
	resp, err := get(t, inj, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("read err = %v, want ErrTruncated", err)
	}
	if len(body) == 0 || int64(len(body)) >= resp.ContentLength {
		t.Fatalf("read %d of %d bytes, want a strict prefix", len(body), resp.ContentLength)
	}
}

func TestMiddlewareSheds503BeforeHandler(t *testing.T) {
	var handled atomic.Int64
	h := Middleware(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		handled.Add(1)
	}), Fault{Err5xx: 1, RetryAfterSeconds: 2}, 9)
	ts := httptest.NewServer(h)
	defer ts.Close()

	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") != "2" {
		t.Fatalf("Retry-After = %q", resp.Header.Get("Retry-After"))
	}
	if handled.Load() != 0 {
		t.Fatal("pre-handler 503 must not run the handler")
	}
}

func TestMiddlewareResetAfterHandler(t *testing.T) {
	var handled atomic.Int64
	h := Middleware(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		handled.Add(1)
		_, _ = w.Write([]byte("done"))
	}), Fault{Reset: 1}, 9)
	ts := httptest.NewServer(h)
	defer ts.Close()

	_, err := http.Get(ts.URL)
	if err == nil {
		t.Fatal("expected a transport error from the hijacked connection")
	}
	if handled.Load() != 1 {
		t.Fatalf("handler ran %d times, want 1 (reset happens after processing)", handled.Load())
	}
}

func TestMiddlewarePassThrough(t *testing.T) {
	h := Middleware(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusTeapot)
	}), Fault{}, 9)
	ts := httptest.NewServer(h)
	defer ts.Close()
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTeapot {
		t.Fatalf("status = %d, want pass-through 418", resp.StatusCode)
	}
}
