package chaos

// Injectable filesystem faults, threaded under internal/wal via its FS seam.
// Production server-side WiFi deployments report disk misbehaviour — full
// volumes, failing fsyncs, latency spikes — as a dominant operational pain;
// this layer reproduces those faults deterministically so the crowd-server's
// degraded-mode state machine (healthy → read-only → recovering) is driven by
// scripted disk weather in tests instead of waiting for a real outage.
//
// A FaultFS wraps a real (or other) wal.FS and applies the currently-set
// FSFault plan to every file it has opened, including files opened before the
// plan was set — so a test can boot a healthy server, then break the disk
// under its feet mid-ingest, then heal it and watch recovery.

import (
	"errors"
	"sync"
	"syscall"
	"time"

	"crowdwifi/internal/wal"
)

// ErrInjectedWrite and friends are distinguishable from real disk errors.
var (
	// ErrInjectedWrite models a generic failed write.
	ErrInjectedWrite = errors.New("chaos: injected write error")
	// ErrInjectedSync models an fsync the kernel refused.
	ErrInjectedSync = errors.New("chaos: injected fsync error")
)

// ErrNoSpace is the injected ENOSPC, wrapped so errors.Is(err,
// syscall.ENOSPC) holds — exactly what a full volume returns.
var ErrNoSpace = &injectedErr{msg: "chaos: injected disk full", under: syscall.ENOSPC}

type injectedErr struct {
	msg   string
	under error
}

func (e *injectedErr) Error() string { return e.msg }
func (e *injectedErr) Unwrap() error { return e.under }

// FSFault is one disk-weather plan. The zero value injects nothing.
type FSFault struct {
	// FailWrites fails the next N writes (shared across files) with
	// WriteErr, shortening each to TornBytes first. 0 disables; a negative
	// value fails every write until the plan changes.
	FailWrites int
	// TornBytes is how many bytes of a failing write actually land before
	// the error — a short write tearing a frame in half. Negative means the
	// whole buffer lands (the error is reported after a complete write);
	// 0 means nothing lands.
	TornBytes int
	// WriteErr overrides the error failed writes return (default
	// ErrInjectedWrite). Use ErrNoSpace for disk-full semantics.
	WriteErr error
	// FailSyncs fails the next N fsyncs with SyncErr. 0 disables; negative
	// fails every fsync until the plan changes.
	FailSyncs int
	// SyncErr overrides the error failed fsyncs return (default
	// ErrInjectedSync).
	SyncErr error
	// WriteDelay stalls every write (healthy or failing) — a latency spike,
	// not an error.
	WriteDelay time.Duration
	// FailTruncates fails the next N truncates with WriteErr — blocking the
	// WAL's torn-tail self-heal, the deepest fault mode. 0 disables;
	// negative fails every truncate until the plan changes.
	FailTruncates int
}

// FaultFS wraps a wal.FS with a mutable fault plan. All methods are safe for
// concurrent use. The zero value is not usable; construct with NewFaultFS.
type FaultFS struct {
	next wal.FS

	mu    sync.Mutex
	fault FSFault

	writesFailed int
	syncsFailed  int
}

// NewFaultFS wraps next (nil selects the real filesystem) with an initially
// empty fault plan.
func NewFaultFS(next wal.FS) *FaultFS {
	if next == nil {
		next = wal.OSFS{}
	}
	return &FaultFS{next: next}
}

// SetFault installs a new plan, replacing the previous one. SetFault(FSFault{})
// heals the disk.
func (fs *FaultFS) SetFault(f FSFault) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.fault = f
}

// Counts reports how many writes and fsyncs were failed so far.
func (fs *FaultFS) Counts() (writesFailed, syncsFailed int) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.writesFailed, fs.syncsFailed
}

// takeWrite consumes one write from the plan, returning the injected error
// (nil for a healthy write), the bytes to land first, and the stall.
func (fs *FaultFS) takeWrite(n int) (err error, land int, delay time.Duration) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	delay = fs.fault.WriteDelay
	if fs.fault.FailWrites == 0 {
		return nil, n, delay
	}
	if fs.fault.FailWrites > 0 {
		fs.fault.FailWrites--
	}
	fs.writesFailed++
	err = fs.fault.WriteErr
	if err == nil {
		err = ErrInjectedWrite
	}
	land = fs.fault.TornBytes
	if land < 0 || land > n {
		land = n
	}
	return err, land, delay
}

// takeTruncate consumes one truncate from the plan.
func (fs *FaultFS) takeTruncate() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.fault.FailTruncates == 0 {
		return nil
	}
	if fs.fault.FailTruncates > 0 {
		fs.fault.FailTruncates--
	}
	if fs.fault.WriteErr != nil {
		return fs.fault.WriteErr
	}
	return ErrInjectedWrite
}

// takeSync consumes one fsync from the plan.
func (fs *FaultFS) takeSync() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.fault.FailSyncs == 0 {
		return nil
	}
	if fs.fault.FailSyncs > 0 {
		fs.fault.FailSyncs--
	}
	fs.syncsFailed++
	if fs.fault.SyncErr != nil {
		return fs.fault.SyncErr
	}
	return ErrInjectedSync
}

// Create implements wal.FS.
func (fs *FaultFS) Create(path string) (wal.File, error) {
	f, err := fs.next.Create(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: fs, next: f}, nil
}

// OpenAppend implements wal.FS.
func (fs *FaultFS) OpenAppend(path string) (wal.File, error) {
	f, err := fs.next.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: fs, next: f}, nil
}

// SyncDir implements wal.FS. Directory syncs ride the same fsync plan as
// file syncs — a disk refusing fsyncs refuses them everywhere.
func (fs *FaultFS) SyncDir(dir string) error {
	if err := fs.takeSync(); err != nil {
		return err
	}
	return fs.next.SyncDir(dir)
}

var _ wal.FS = (*FaultFS)(nil)

// faultFile applies the owning FaultFS's live plan to one file.
type faultFile struct {
	fs   *FaultFS
	next wal.File
}

func (f *faultFile) Write(p []byte) (int, error) {
	inj, land, delay := f.fs.takeWrite(len(p))
	if delay > 0 {
		time.Sleep(delay)
	}
	if inj == nil {
		return f.next.Write(p)
	}
	n := 0
	if land > 0 {
		// Land the torn prefix for real, so the on-disk tail genuinely
		// holds a half-written frame until the WAL heals it.
		var werr error
		n, werr = f.next.Write(p[:land])
		if werr != nil {
			return n, werr
		}
	}
	return n, inj
}

func (f *faultFile) Sync() error {
	if err := f.fs.takeSync(); err != nil {
		return err
	}
	return f.next.Sync()
}

func (f *faultFile) Truncate(size int64) error {
	if err := f.fs.takeTruncate(); err != nil {
		return err
	}
	return f.next.Truncate(size)
}

func (f *faultFile) Close() error { return f.next.Close() }
