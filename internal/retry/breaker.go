package retry

import (
	"errors"
	"sync"
	"time"
)

// State is a circuit breaker state.
type State int

const (
	// Closed lets every request through.
	Closed State = iota
	// Open fast-fails every request until the cooldown elapses.
	Open
	// HalfOpen lets exactly one probe through; its outcome decides the
	// next state.
	HalfOpen
)

func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half_open"
	default:
		return "unknown"
	}
}

// ErrOpen is returned by Allow while the breaker is open (or a half-open
// probe is already in flight).
var ErrOpen = errors.New("retry: circuit breaker open")

// BreakerConfig configures a Breaker. The zero value selects the defaults.
type BreakerConfig struct {
	// Threshold is the number of consecutive failures that opens the
	// breaker (default 5).
	Threshold int
	// Cooldown is how long the breaker stays open before letting a
	// half-open probe through (default 2 s).
	Cooldown time.Duration
	// Now overrides the clock (tests).
	Now func() time.Time
	// OnStateChange, when non-nil, observes every transition.
	OnStateChange func(from, to State)
}

// Breaker is a simple consecutive-failure circuit breaker. A nil *Breaker is
// a no-op that allows everything, so wiring it is optional.
type Breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	now       func() time.Time
	onChange  func(from, to State)

	state    State
	failures int
	openedAt time.Time
}

// NewBreaker builds a breaker from cfg.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.Threshold <= 0 {
		cfg.Threshold = 5
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 2 * time.Second
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Breaker{
		threshold: cfg.Threshold,
		cooldown:  cfg.Cooldown,
		now:       cfg.Now,
		onChange:  cfg.OnStateChange,
	}
}

// transition must be called with b.mu held.
func (b *Breaker) transition(to State) {
	from := b.state
	if from == to {
		return
	}
	b.state = to
	if b.onChange != nil {
		b.onChange(from, to)
	}
}

// Allow reports whether a request may proceed. In the open state it returns
// ErrOpen until the cooldown elapses, at which point the caller becomes the
// half-open probe.
func (b *Breaker) Allow() error {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return nil
	case Open:
		if b.now().Sub(b.openedAt) >= b.cooldown {
			b.transition(HalfOpen)
			return nil
		}
		return ErrOpen
	default: // HalfOpen: a probe is already in flight.
		return ErrOpen
	}
}

// Record reports one request outcome. Failures are transport-level: network
// errors and 5xx/429 responses; a 4xx means the server is reachable and
// counts as success.
func (b *Breaker) Record(success bool) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		if success {
			b.failures = 0
			return
		}
		b.failures++
		if b.failures >= b.threshold {
			b.openedAt = b.now()
			b.transition(Open)
		}
	case HalfOpen:
		if success {
			b.failures = 0
			b.transition(Closed)
			return
		}
		b.openedAt = b.now()
		b.transition(Open)
	case Open:
		// Late results from before the trip; ignore.
	}
}

// State returns the current state.
func (b *Breaker) State() State {
	if b == nil {
		return Closed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
