package retry

import "crowdwifi/internal/obs"

// Metrics instruments the retry layer. A nil *Metrics is a no-op.
type Metrics struct {
	retries       *obs.Counter
	exhausted     *obs.Counter
	budgetDenied  *obs.Counter
	breakerDenied *obs.Counter
	retryDelay    *obs.Histogram
	breakerState  *obs.Gauge
	toOpen        *obs.Counter
	toHalfOpen    *obs.Counter
	toClosed      *obs.Counter
}

// NewMetrics registers the retry/breaker series on reg. Returns nil for a
// nil registry.
func NewMetrics(reg *obs.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	transHelp := "Circuit breaker state transitions, by destination state."
	return &Metrics{
		retries:       reg.Counter("crowdwifi_retry_retries_total", "HTTP request retries issued after a retryable failure."),
		exhausted:     reg.Counter("crowdwifi_retry_exhausted_total", "Requests that failed after exhausting every retry attempt."),
		budgetDenied:  reg.Counter("crowdwifi_retry_budget_denied_total", "Retries suppressed because the per-endpoint retry budget was empty."),
		breakerDenied: reg.Counter("crowdwifi_breaker_denied_total", "Requests fast-failed by an open circuit breaker."),
		retryDelay:    reg.Histogram("crowdwifi_retry_delay_seconds", "Backoff slept before each retry.", nil),
		breakerState:  reg.Gauge("crowdwifi_breaker_state", "Circuit breaker state: 0 closed, 1 open, 2 half-open."),
		toOpen:        reg.Counter("crowdwifi_breaker_transitions_total", transHelp, obs.L("to", "open")),
		toHalfOpen:    reg.Counter("crowdwifi_breaker_transitions_total", transHelp, obs.L("to", "half_open")),
		toClosed:      reg.Counter("crowdwifi_breaker_transitions_total", transHelp, obs.L("to", "closed")),
	}
}

// BreakerHook returns an OnStateChange callback that records transitions and
// mirrors the current state into a gauge. Safe on a nil receiver.
func (m *Metrics) BreakerHook() func(from, to State) {
	if m == nil {
		return nil
	}
	return func(_, to State) {
		m.breakerState.Set(float64(to))
		switch to {
		case Open:
			m.toOpen.Inc()
		case HalfOpen:
			m.toHalfOpen.Inc()
		case Closed:
			m.toClosed.Inc()
		}
	}
}

func (m *Metrics) incRetry(delaySeconds float64) {
	if m == nil {
		return
	}
	m.retries.Inc()
	m.retryDelay.Observe(delaySeconds)
}

func (m *Metrics) incExhausted() {
	if m != nil {
		m.exhausted.Inc()
	}
}

func (m *Metrics) incBudgetDenied() {
	if m != nil {
		m.budgetDenied.Inc()
	}
}

func (m *Metrics) incBreakerDenied() {
	if m != nil {
		m.breakerDenied.Inc()
	}
}
