package retry

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestPolicyDelayFullJitter(t *testing.T) {
	p := Policy{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second, Multiplier: 2}

	// Rand = 1-ε pins the delay at the ceiling for each retry index.
	p.Rand = func() float64 { return 0.999999 }
	for i, wantCeil := range []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, time.Second, time.Second, // capped at MaxDelay
	} {
		d := p.Delay(i, 0)
		if d > wantCeil || d < time.Duration(0.99*float64(wantCeil)) {
			t.Errorf("Delay(%d) = %v, want ≈%v", i, d, wantCeil)
		}
	}

	// Rand = 0 gives zero delay: full jitter spans [0, ceil).
	p.Rand = func() float64 { return 0 }
	if d := p.Delay(3, 0); d != 0 {
		t.Errorf("Delay with zero jitter = %v, want 0", d)
	}
}

func TestPolicyDelayHonorsHint(t *testing.T) {
	// The hint is a floor, jittered up to 1.5× to decorrelate shed herds:
	// Rand = 0 sleeps exactly the hint, Rand = 0.5 lands mid-spread.
	p := Policy{Rand: func() float64 { return 0 }}
	if d := p.Delay(0, 7*time.Second); d != 7*time.Second {
		t.Errorf("hinted delay = %v, want 7s", d)
	}
	p.Rand = func() float64 { return 0.5 }
	if d := p.Delay(0, 7*time.Second); d != 8750*time.Millisecond {
		t.Errorf("jittered hinted delay = %v, want 8.75s", d)
	}
	// Repeated sheds double the hint: the server's estimate lost to
	// arrival pressure, so the cadence must back off.
	p.Rand = func() float64 { return 0 }
	if d := p.Delay(2, 100*time.Millisecond); d != 400*time.Millisecond {
		t.Errorf("hint on third attempt = %v, want 400ms", d)
	}
	// Hints are clamped so a hostile server cannot park the client.
	p.Rand = func() float64 { return 0 }
	if d := p.Delay(0, time.Hour); d != maxRetryAfter {
		t.Errorf("clamped hint = %v, want %v", d, maxRetryAfter)
	}
}

func TestDoRetriesUntilSuccess(t *testing.T) {
	calls := 0
	err := Do(context.Background(), Policy{BaseDelay: time.Microsecond, MaxDelay: time.Microsecond},
		func(context.Context) error {
			calls++
			if calls < 3 {
				return errors.New("transient")
			}
			return nil
		}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
}

func TestDoStopsOnPermanentError(t *testing.T) {
	permanent := errors.New("permanent")
	calls := 0
	err := Do(context.Background(), Policy{BaseDelay: time.Microsecond},
		func(context.Context) error {
			calls++
			return permanent
		},
		func(err error) bool { return !errors.Is(err, permanent) })
	if !errors.Is(err, permanent) {
		t.Fatalf("err = %v", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (no retry of permanent error)", calls)
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	calls := 0
	err := Do(context.Background(), Policy{MaxAttempts: 3, BaseDelay: time.Microsecond, MaxDelay: time.Microsecond},
		func(context.Context) error {
			calls++
			return errors.New("always failing")
		}, nil)
	if err == nil {
		t.Fatal("expected error after exhaustion")
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
}

func TestDoRespectsContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	err := Do(ctx, Policy{MaxAttempts: 10, BaseDelay: time.Hour, MaxDelay: time.Hour,
		Rand: func() float64 { return 1 }},
		func(context.Context) error {
			calls++
			cancel()
			return errors.New("fail then cancel")
		}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (cancelled during backoff)", calls)
	}
}

func TestSleepCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := Sleep(ctx, time.Hour); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if err := Sleep(context.Background(), 0); err != nil {
		t.Fatalf("zero sleep: %v", err)
	}
}

func TestBreakerLifecycle(t *testing.T) {
	now := time.Unix(0, 0)
	var transitions []string
	b := NewBreaker(BreakerConfig{
		Threshold: 3,
		Cooldown:  10 * time.Second,
		Now:       func() time.Time { return now },
		OnStateChange: func(from, to State) {
			transitions = append(transitions, from.String()+"->"+to.String())
		},
	})

	// Two failures stay closed; the third opens.
	for i := 0; i < 2; i++ {
		if err := b.Allow(); err != nil {
			t.Fatal(err)
		}
		b.Record(false)
	}
	if b.State() != Closed {
		t.Fatalf("state = %v after 2 failures", b.State())
	}
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Record(false)
	if b.State() != Open {
		t.Fatalf("state = %v, want Open", b.State())
	}
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("Allow while open = %v, want ErrOpen", err)
	}

	// After cooldown one probe is admitted; a second concurrent caller is not.
	now = now.Add(10 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe denied: %v", err)
	}
	if b.State() != HalfOpen {
		t.Fatalf("state = %v, want HalfOpen", b.State())
	}
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatal("second half-open caller admitted")
	}

	// Failed probe re-opens; successful probe after another cooldown closes.
	b.Record(false)
	if b.State() != Open {
		t.Fatalf("state = %v after failed probe", b.State())
	}
	now = now.Add(10 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Record(true)
	if b.State() != Closed {
		t.Fatalf("state = %v after successful probe", b.State())
	}

	want := []string{
		"closed->open", "open->half_open", "half_open->open",
		"open->half_open", "half_open->closed",
	}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", transitions, want)
		}
	}
}

func TestNilBreakerIsNoOp(t *testing.T) {
	var b *Breaker
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Record(false)
	if b.State() != Closed {
		t.Fatal("nil breaker not closed")
	}
}

func TestBudgetTokens(t *testing.T) {
	b := newBudget(BudgetConfig{Ratio: 0.5, Burst: 2})
	// Starts full: two retries allowed, then empty.
	if !b.withdraw() || !b.withdraw() {
		t.Fatal("initial burst not available")
	}
	if b.withdraw() {
		t.Fatal("withdraw from empty budget")
	}
	// Two deposits refill one token.
	b.deposit()
	if b.withdraw() {
		t.Fatal("half a token should not allow a retry")
	}
	b.deposit()
	if !b.withdraw() {
		t.Fatal("refilled token not available")
	}
}
