// Package retry implements the resilience primitives for the vehicle↔server
// HTTP path: context-aware exponential backoff with full jitter, a
// per-endpoint retry budget, and a simple circuit breaker. The paper's
// Section 6.3 connectivity experiment shows vehicle↔infrastructure contact
// windows are short and lossy, so every upload must assume the first attempt
// can fail and the retry schedule must neither hammer a struggling server
// (budget, Retry-After) nor waste the contact window waiting (full jitter
// keeps retries uncorrelated across vehicles).
package retry

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Default policy knobs, tuned for contact windows measured in seconds.
const (
	DefaultMaxAttempts = 4
	DefaultBaseDelay   = 100 * time.Millisecond
	DefaultMaxDelay    = 5 * time.Second
	DefaultMultiplier  = 2.0

	// maxRetryAfter caps how long a server-sent Retry-After can make the
	// client sleep, so a misbehaving server cannot park a vehicle forever.
	maxRetryAfter = 30 * time.Second
)

// Policy describes an exponential-backoff retry schedule with full jitter.
// The zero value selects the defaults above.
type Policy struct {
	// MaxAttempts is the total number of tries including the first
	// (default 4).
	MaxAttempts int
	// BaseDelay is the backoff ceiling before the first retry (default
	// 100 ms).
	BaseDelay time.Duration
	// MaxDelay caps the backoff ceiling (default 5 s).
	MaxDelay time.Duration
	// Multiplier grows the ceiling per retry (default 2).
	Multiplier float64
	// Rand supplies jitter in [0,1); nil selects math/rand. Tests inject a
	// deterministic source.
	Rand func() float64
}

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = DefaultMaxAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = DefaultBaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = DefaultMaxDelay
	}
	if p.Multiplier <= 1 {
		p.Multiplier = DefaultMultiplier
	}
	if p.Rand == nil {
		p.Rand = rand.Float64
	}
	return p
}

// Delay returns the sleep before retry number retryIdx (0 for the first
// retry). A positive hint — a server-sent Retry-After — overrides the
// computed backoff, clamped to a hard cap; otherwise the delay is drawn
// uniformly from [0, min(MaxDelay, BaseDelay·Multiplier^retryIdx)) (the
// "full jitter" scheme), which decorrelates retry storms across vehicles.
func (p Policy) Delay(retryIdx int, hint time.Duration) time.Duration {
	p = p.withDefaults()
	if hint > 0 {
		// The hint is the server's drain estimate for the backlog it can
		// see — not for the competing demand it can't. Honor it verbatim
		// on the first retry, but double it per repeated shed: a client
		// rejected again at the hinted time is evidence the estimate lost
		// to arrival pressure, and constant-cadence retries at saturation
		// just burn server CPU on 503s.
		for i := 0; i < retryIdx && hint < maxRetryAfter; i++ {
			hint *= 2
		}
		if hint > maxRetryAfter {
			hint = maxRetryAfter
		}
		// Retry-After is a lower bound, not an appointment: a fleet that
		// sleeps exactly the hinted time wakes as one herd, slams the
		// queue, and leaves the server idle in between. Spread wakeups
		// across [hint, 1.5·hint) so the backlog arrives as a stream.
		return hint + time.Duration(p.Rand()*0.5*float64(hint))
	}
	ceil := float64(p.BaseDelay) * math.Pow(p.Multiplier, float64(retryIdx))
	if ceil > float64(p.MaxDelay) {
		ceil = float64(p.MaxDelay)
	}
	return time.Duration(p.Rand() * ceil)
}

// Do runs op under the policy until it succeeds, returns a non-retryable
// error, the attempts are exhausted, or ctx ends. classify reports whether an
// error is worth retrying; nil retries every error. The last error is
// returned on exhaustion.
func Do(ctx context.Context, p Policy, op func(ctx context.Context) error, classify func(error) bool) error {
	p = p.withDefaults()
	var err error
	for attempt := 0; attempt < p.MaxAttempts; attempt++ {
		if attempt > 0 {
			if werr := Sleep(ctx, p.Delay(attempt-1, 0)); werr != nil {
				return werr
			}
		}
		if err = op(ctx); err == nil {
			return nil
		}
		if cerr := ctx.Err(); cerr != nil {
			return fmt.Errorf("%w: %w", cerr, err)
		}
		if classify != nil && !classify(err) {
			return err
		}
	}
	return err
}

// Sleep blocks for d or until ctx ends, returning ctx's error in that case.
func Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
