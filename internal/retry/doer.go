package retry

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"crowdwifi/internal/obs/trace"
)

// HTTPDoer abstracts *http.Client so the Doer can wrap any transport,
// including the chaos injector.
type HTTPDoer interface {
	Do(req *http.Request) (*http.Response, error)
}

// DoerFunc adapts a function to HTTPDoer.
type DoerFunc func(*http.Request) (*http.Response, error)

// Do implements HTTPDoer.
func (f DoerFunc) Do(req *http.Request) (*http.Response, error) { return f(req) }

// BudgetConfig bounds how many retries an endpoint may issue relative to its
// request volume: every initial request deposits Ratio tokens (capped at
// Burst) and every retry withdraws one, so a fully-down server costs at most
// Burst + Ratio·requests extra load instead of MaxAttempts×.
type BudgetConfig struct {
	// Ratio is the retries allowed per request (default 0.5).
	Ratio float64
	// Burst is the token cap (default 10).
	Burst float64
}

func (c BudgetConfig) withDefaults() BudgetConfig {
	if c.Ratio <= 0 {
		c.Ratio = 0.5
	}
	if c.Burst <= 0 {
		c.Burst = 10
	}
	return c
}

// budget is one endpoint's token bucket. Buckets start full so short bursts
// of failures right after startup can still retry.
type budget struct {
	mu     sync.Mutex
	tokens float64
	cfg    BudgetConfig
}

func newBudget(cfg BudgetConfig) *budget {
	return &budget{tokens: cfg.Burst, cfg: cfg}
}

func (b *budget) deposit() {
	b.mu.Lock()
	b.tokens += b.cfg.Ratio
	if b.tokens > b.cfg.Burst {
		b.tokens = b.cfg.Burst
	}
	b.mu.Unlock()
}

func (b *budget) withdraw() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Doer wraps an HTTPDoer with retries, a per-endpoint retry budget, and an
// optional circuit breaker. It implements HTTPDoer itself, so it drops into
// any client accepting one, and http.RoundTripper for transport-level use.
type Doer struct {
	next    HTTPDoer
	policy  Policy
	breaker *Breaker
	budgets BudgetConfig
	metrics *Metrics

	mu        sync.Mutex
	perTarget map[string]*budget
}

// DoerOption configures a Doer.
type DoerOption func(*Doer)

// WithBreaker attaches a circuit breaker shared by every request through
// this Doer.
func WithBreaker(b *Breaker) DoerOption {
	return func(d *Doer) { d.breaker = b }
}

// WithBudget overrides the per-endpoint retry budget.
func WithBudget(cfg BudgetConfig) DoerOption {
	return func(d *Doer) { d.budgets = cfg }
}

// WithMetrics attaches retry metrics.
func WithMetrics(m *Metrics) DoerOption {
	return func(d *Doer) { d.metrics = m }
}

// NewDoer wraps next (nil selects http.DefaultClient) with policy.
func NewDoer(next HTTPDoer, policy Policy, opts ...DoerOption) *Doer {
	if next == nil {
		next = http.DefaultClient
	}
	d := &Doer{
		next:      next,
		policy:    policy.withDefaults(),
		budgets:   BudgetConfig{}.withDefaults(),
		perTarget: map[string]*budget{},
	}
	for _, opt := range opts {
		opt(d)
	}
	d.budgets = d.budgets.withDefaults()
	return d
}

// Breaker exposes the attached breaker (nil when none).
func (d *Doer) Breaker() *Breaker { return d.breaker }

func (d *Doer) budget(endpoint string) *budget {
	d.mu.Lock()
	defer d.mu.Unlock()
	b, ok := d.perTarget[endpoint]
	if !ok {
		b = newBudget(d.budgets)
		d.perTarget[endpoint] = b
	}
	return b
}

// RetryableStatus reports whether an HTTP status is worth retrying: 429 and
// the transient 5xx family.
func RetryableStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusInternalServerError,
		http.StatusBadGateway, http.StatusServiceUnavailable,
		http.StatusGatewayTimeout:
		return true
	}
	return false
}

// retryAfter parses the server's backoff hint: the crowd-server's precise
// millisecond header when present (whole-second Retry-After rounds a 40ms
// backlog estimate up 25×), falling back to the standard Retry-After in
// delay-seconds form. 0 means absent or unparseable (HTTP-date form is not
// supported).
func retryAfter(resp *http.Response) time.Duration {
	if resp == nil {
		return 0
	}
	if v := resp.Header.Get("X-Crowdwifi-Retry-After-Ms"); v != "" {
		if ms, err := strconv.Atoi(v); err == nil && ms > 0 {
			return time.Duration(ms) * time.Millisecond
		}
	}
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// drainClose releases a response we will not return so its connection can be
// reused by the retry.
func drainClose(resp *http.Response) {
	if resp == nil {
		return
	}
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
}

// Do issues req with retries. Failed attempts are retried when the error is
// transport-level or the status is 429/5xx, the request body can be replayed
// (GetBody set, or no body), the retry budget allows it, and the request
// context is still live. The final attempt's response or error is returned
// unchanged, so callers still observe terminal statuses. A positive
// Retry-After on 429/503 overrides the backoff.
func (d *Doer) Do(req *http.Request) (*http.Response, error) {
	ctx := req.Context()
	b := d.budget(req.URL.Path)
	b.deposit()

	for attempt := 0; ; attempt++ {
		// Each attempt is its own child span under the caller's trace, and
		// each stamps its own traceparent — so the server-side spans of every
		// retry hang off the attempt that caused them, not the logical
		// request as a whole.
		actx, span := trace.StartChild(ctx, "retry.attempt")
		span.SetAttr("attempt", attempt)
		span.SetAttr("http.method", req.Method)
		span.SetAttr("http.path", req.URL.Path)

		if err := d.breaker.Allow(); err != nil {
			d.metrics.incBreakerDenied()
			err = fmt.Errorf("%s %s: %w", req.Method, req.URL.Path, err)
			span.SetError(err)
			span.End()
			return nil, err
		}
		attemptReq := req
		if attempt > 0 {
			attemptReq = req.Clone(ctx)
			if req.GetBody != nil {
				body, err := req.GetBody()
				if err != nil {
					err = fmt.Errorf("retry: rewind request body: %w", err)
					span.SetError(err)
					span.End()
					return nil, err
				}
				attemptReq.Body = body
			}
		}
		trace.Inject(actx, attemptReq.Header)
		resp, err := d.next.Do(attemptReq)

		failure := err != nil || RetryableStatus(resp.StatusCode)
		d.breaker.Record(!failure)
		if err != nil {
			span.SetError(err)
		} else {
			span.SetAttr("http.status", resp.StatusCode)
			if failure {
				span.SetError(fmt.Errorf("retryable status %d", resp.StatusCode))
			}
		}
		if !failure {
			span.End()
			return resp, nil
		}
		if ctx.Err() != nil {
			// The caller is gone; report its cancellation, not ours.
			drainClose(resp)
			if err == nil {
				err = ctx.Err()
			}
			span.SetError(err)
			span.End()
			return nil, err
		}
		last := attempt+1 >= d.policy.MaxAttempts ||
			(req.GetBody == nil && req.Body != nil)
		if last {
			d.metrics.incExhausted()
			span.AddEvent("attempts exhausted")
			span.End()
			return resp, err
		}
		if !b.withdraw() {
			d.metrics.incBudgetDenied()
			span.AddEvent("retry budget exhausted")
			span.End()
			return resp, err
		}
		hint := retryAfter(resp)
		drainClose(resp)
		delay := d.policy.Delay(attempt, hint)
		d.metrics.incRetry(delay.Seconds())
		span.End()
		if werr := Sleep(ctx, delay); werr != nil {
			return nil, werr
		}
	}
}

// RoundTrip implements http.RoundTripper over the same retry loop, so the
// Doer can also sit inside an *http.Client as its Transport.
func (d *Doer) RoundTrip(req *http.Request) (*http.Response, error) {
	return d.Do(req)
}

var _ http.RoundTripper = (*Doer)(nil)

// IsBreakerOpen reports whether err came from a fast-failing open breaker.
func IsBreakerOpen(err error) bool {
	return errors.Is(err, ErrOpen)
}
