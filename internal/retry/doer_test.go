package retry

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"crowdwifi/internal/obs"
)

// fastPolicy keeps test backoffs in the microsecond range.
func fastPolicy(attempts int) Policy {
	return Policy{
		MaxAttempts: attempts,
		BaseDelay:   time.Microsecond,
		MaxDelay:    10 * time.Microsecond,
		Multiplier:  2,
	}
}

func newPost(t *testing.T, url, body string) *http.Request {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return req
}

func TestDoerRetries5xxThenSucceeds(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got, _ := io.ReadAll(r.Body)
		if string(got) != "payload" {
			t.Errorf("attempt body = %q (request body not rewound)", got)
		}
		if calls.Add(1) < 3 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()

	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	d := NewDoer(http.DefaultClient, fastPolicy(5), WithMetrics(m))
	resp, err := d.Do(newPost(t, ts.URL+"/v1/reports", "payload"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3", got)
	}
	if v := m.retries.Value(); v != 2 {
		t.Fatalf("retries metric = %d, want 2", v)
	}
}

func TestDoerReturnsTerminal5xx(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer ts.Close()

	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	d := NewDoer(http.DefaultClient, fastPolicy(3), WithMetrics(m))
	resp, err := d.Do(newPost(t, ts.URL, "x"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want the terminal 500", resp.StatusCode)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("calls = %d, want 3", got)
	}
	if m.exhausted.Value() != 1 {
		t.Fatalf("exhausted metric = %d, want 1", m.exhausted.Value())
	}
}

func TestDoerDoesNotRetry4xx(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
	}))
	defer ts.Close()

	d := NewDoer(http.DefaultClient, fastPolicy(5))
	resp, err := d.Do(newPost(t, ts.URL, "x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if calls.Load() != 1 {
		t.Fatalf("calls = %d, want 1 (4xx is permanent)", calls.Load())
	}
}

func TestDoerHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()

	// Jitter pinned to zero: any wait must come from the Retry-After hint.
	p := fastPolicy(3)
	p.Rand = func() float64 { return 0 }
	d := NewDoer(http.DefaultClient, p)
	start := time.Now()
	resp, err := d.Do(newPost(t, ts.URL, "x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed < time.Second {
		t.Fatalf("elapsed = %v, want ≥ 1 s from Retry-After", elapsed)
	}
	if calls.Load() != 2 {
		t.Fatalf("calls = %d", calls.Load())
	}
}

func TestDoerBudgetSuppressesRetries(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	// Burst 1, ratio tiny: the first request may retry once; the following
	// requests have an empty bucket and fail fast.
	d := NewDoer(http.DefaultClient, fastPolicy(4),
		WithBudget(BudgetConfig{Ratio: 0.001, Burst: 1}), WithMetrics(m))
	for i := 0; i < 3; i++ {
		resp, err := d.Do(newPost(t, ts.URL+"/ep", "x"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	// 3 requests, but only 1 retry total: 4 server calls.
	if got := calls.Load(); got != 4 {
		t.Fatalf("server calls = %d, want 4 (budget must cap retries)", got)
	}
	// Denials: request 1 after its single retry, requests 2 and 3 at once.
	if m.budgetDenied.Value() != 3 {
		t.Fatalf("budget denied metric = %d, want 3", m.budgetDenied.Value())
	}
}

func TestDoerBreakerFastFails(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	br := NewBreaker(BreakerConfig{Threshold: 2, Cooldown: time.Hour, OnStateChange: m.BreakerHook()})
	d := NewDoer(http.DefaultClient, fastPolicy(2), WithBreaker(br), WithMetrics(m))

	// First request: 2 attempts, both 503 → breaker opens.
	resp, err := d.Do(newPost(t, ts.URL, "x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if br.State() != Open {
		t.Fatalf("breaker state = %v, want Open", br.State())
	}
	// Second request never reaches the server.
	before := calls.Load()
	if _, err := d.Do(newPost(t, ts.URL, "x")); !IsBreakerOpen(err) {
		t.Fatalf("err = %v, want breaker-open", err)
	}
	if calls.Load() != before {
		t.Fatal("open breaker let a request through")
	}
	if m.breakerDenied.Value() != 1 {
		t.Fatalf("breaker denied metric = %d, want 1", m.breakerDenied.Value())
	}
	if m.breakerState.Value() != float64(Open) {
		t.Fatalf("breaker state gauge = %v, want %v", m.breakerState.Value(), float64(Open))
	}
}

func TestDoerNetworkErrorRetries(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()

	boom := errors.New("connection reset by chaos")
	inner := DoerFunc(func(req *http.Request) (*http.Response, error) {
		if calls.Add(1) < 3 {
			return nil, boom
		}
		return http.DefaultClient.Do(req)
	})
	d := NewDoer(inner, fastPolicy(4))
	resp, err := d.Do(newPost(t, ts.URL, "x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if calls.Load() != 3 {
		t.Fatalf("calls = %d, want 3", calls.Load())
	}
}

func TestDoerUnreplayableBodyNotRetried(t *testing.T) {
	var calls atomic.Int64
	inner := DoerFunc(func(*http.Request) (*http.Response, error) {
		calls.Add(1)
		return nil, errors.New("boom")
	})
	d := NewDoer(inner, fastPolicy(5))
	// A raw io.Reader body (not a *bytes.Reader) leaves GetBody nil.
	req, err := http.NewRequest(http.MethodPost, "http://example.invalid/x",
		io.MultiReader(bytes.NewReader([]byte("unreplayable"))))
	if err != nil {
		t.Fatal(err)
	}
	req.GetBody = nil
	if _, err := d.Do(req); err == nil {
		t.Fatal("expected error")
	}
	if calls.Load() != 1 {
		t.Fatalf("calls = %d, want 1 (body cannot be replayed)", calls.Load())
	}
}

func TestDoerContextCancelDuringBackoff(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	inner := DoerFunc(func(*http.Request) (*http.Response, error) {
		calls.Add(1)
		cancel()
		return nil, errors.New("fail")
	})
	p := Policy{MaxAttempts: 5, BaseDelay: time.Hour, MaxDelay: time.Hour, Rand: func() float64 { return 1 }}
	d := NewDoer(inner, p)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://example.invalid/", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Do(req); err == nil {
		t.Fatal("expected error")
	}
	if calls.Load() != 1 {
		t.Fatalf("calls = %d, want 1 (cancelled before any retry)", calls.Load())
	}
}
