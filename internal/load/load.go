// Package load drives a synthetic crowd-vehicle fleet against a running
// crowd-server and measures what the fleet observes: per-endpoint latency
// quantiles, sustained throughput, and the resilience machinery's behaviour
// (retries, sheds, outbox parking) under load.
//
// The generator is closed-loop: each simulated vehicle is one goroutine that
// issues a request, waits for the response, optionally thinks, and repeats —
// so offered load adapts to server latency instead of piling up unbounded
// in-flight requests the way an open-loop generator would. A run has three
// phases:
//
//	warmup  — traffic flows but nothing is recorded, so connection setup,
//	          server JIT-ish warmup, and cold caches stay out of the numbers
//	measure — the measurement window; latency histograms and rate deltas
//	          for the run report come exclusively from this phase
//	drain   — vehicles stop issuing new work and every outbox is flushed,
//	          so the zero-lost-reports accounting can close the books
//
// Vehicles upload realistic payloads: report archetypes are precomputed from
// internal/sim drive-by RSS collection over the paper's UCI scenario, so the
// server's aggregation pipeline sees plausible AP geometry rather than
// random bytes.
package load

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"crowdwifi/internal/client"
	"crowdwifi/internal/cluster"
	"crowdwifi/internal/geo"
	"crowdwifi/internal/obs"
	"crowdwifi/internal/retry"
	"crowdwifi/internal/rng"
	"crowdwifi/internal/server"
	"crowdwifi/internal/sim"
)

// Endpoint labels used in metrics and the run report.
const (
	EndpointUpload = "upload"
	EndpointLookup = "lookup"
)

// Phase is the generator's lifecycle position.
type Phase int32

// Run phases, in order.
const (
	PhaseIdle Phase = iota
	PhaseWarmup
	PhaseMeasure
	PhaseDrain
	PhaseDone
)

// String names the phase for logs and /debug/load.
func (p Phase) String() string {
	switch p {
	case PhaseIdle:
		return "idle"
	case PhaseWarmup:
		return "warmup"
	case PhaseMeasure:
		return "measure"
	case PhaseDrain:
		return "drain"
	case PhaseDone:
		return "done"
	default:
		return fmt.Sprintf("phase(%d)", int32(p))
	}
}

// Config parameterizes one load run.
type Config struct {
	// ServerURL is the crowd-server base URL, e.g. "http://127.0.0.1:8700".
	// When the fleet drives a cluster, point this at the router.
	ServerURL string
	// ScrapeURLs are the debug/metrics endpoints sampled for the
	// server-side section of the report. Empty defaults to [ServerURL].
	// Against a cluster, list every shard (and optionally the router):
	// counters are summed across targets, so RED deltas cover the whole
	// fleet of shards instead of one.
	ScrapeURLs []string
	// Vehicles is the fleet size: one goroutine per simulated vehicle
	// (default 100).
	Vehicles int
	// Warmup, Measure, Drain are the phase durations (defaults 3s, 15s,
	// 10s). Drain bounds how long outbox flushing may take.
	Warmup  time.Duration
	Measure time.Duration
	Drain   time.Duration
	// Think is the mean pause between a vehicle's iterations; the actual
	// pause is uniform in [0.5·Think, 1.5·Think). Zero means no pause
	// (pure closed loop).
	Think time.Duration
	// LookupEvery issues one user-vehicle lookup after every N uploads
	// (default 10; negative disables lookups).
	LookupEvery int
	// Archetypes is how many distinct report payloads to precompute from
	// simulated drives (default 16, capped at Vehicles).
	Archetypes int
	// Seed feeds the deterministic RNG for payload synthesis, think-time
	// jitter, and lookup areas (default 1).
	Seed uint64
	// Codec selects the upload/lookup wire format: client.CodecJSON
	// (default, "") or client.CodecBinary for the length-prefixed frame
	// codec.
	Codec string
	// BatchSize, when > 1, switches vehicles to batched delivery: each
	// iteration still produces one report (so offered load matches a
	// single-upload run), but reports accumulate locally and ship as one
	// POST /v1/reports/batch every BatchSize iterations (frame codec on the
	// wire regardless of Codec). Outbox drains batch the same way.
	BatchSize int
	// RetryAttempts is the per-request attempt budget including the first
	// try (default 4).
	RetryAttempts int
	// OutboxCap bounds each vehicle's store-and-forward outbox (default
	// 256 entries).
	OutboxCap int
	// Registry receives the generator's own metrics; nil creates a private
	// one.
	Registry *obs.Registry
	// Logger receives progress lines; nil discards them.
	Logger *obs.Logger
	// LogEvery is the period of the one-line progress log (default 5s;
	// negative disables it).
	LogEvery time.Duration
	// HTTP overrides the transport; nil builds a retrying doer around
	// http.DefaultClient. Tests inject chaos or in-process handlers here.
	HTTP client.HTTPDoer
}

func (c Config) withDefaults() Config {
	if c.Vehicles <= 0 {
		c.Vehicles = 100
	}
	if c.Warmup <= 0 {
		c.Warmup = 3 * time.Second
	}
	if c.Measure <= 0 {
		c.Measure = 15 * time.Second
	}
	if c.Drain <= 0 {
		c.Drain = 10 * time.Second
	}
	if c.LookupEvery == 0 {
		c.LookupEvery = 10
	}
	if c.Archetypes <= 0 {
		c.Archetypes = 16
	}
	if c.Archetypes > c.Vehicles {
		c.Archetypes = c.Vehicles
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.RetryAttempts <= 0 {
		c.RetryAttempts = 4
	}
	if c.OutboxCap <= 0 {
		c.OutboxCap = 256
	}
	if len(c.ScrapeURLs) == 0 {
		c.ScrapeURLs = []string{c.ServerURL}
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	if c.Logger == nil {
		c.Logger = obs.NewLogger(io.Discard, obs.LevelInfo)
	}
	if c.LogEvery == 0 {
		c.LogEvery = 5 * time.Second
	}
	return c
}

// track holds one endpoint's instruments. The window feeds live progress
// (/debug/load and the periodic log line); the measured histogram is only
// observed during the measure phase, so its lifetime quantiles ARE the
// measurement-window quantiles the run report publishes.
type track struct {
	window   *obs.WindowedHistogram
	measured *obs.Histogram
	ok       *obs.Counter
	queued   *obs.Counter
	errs     *obs.Counter
}

// vehicle is one simulated fleet member: a crowd-vehicle for uploads, a
// user-vehicle for lookups, and a private RNG so the drive loop never
// contends on shared random state.
type vehicle struct {
	cv   *client.CrowdVehicle
	user *client.UserVehicle
	rep  server.Report
	rnd  *rng.RNG
	area geo.Rect
	// pending accumulates this vehicle's produced-but-unshipped reports in
	// batch mode; it flushes every BatchSize iterations and once on stop.
	pending []server.Report
}

// Runner executes one load run. Build it with NewRunner, then call Run once.
type Runner struct {
	cfg Config
	reg *obs.Registry
	log *obs.Logger

	clientMetrics *client.Metrics
	doer          client.HTTPDoer

	phase      atomic.Int32
	phaseStart atomic.Int64 // unix nanos
	runStart   time.Time
	measuring  atomic.Bool
	stopping   atomic.Bool

	vehicles []*vehicle
	tracks   map[string]*track

	// Per-shard upload latency, keyed by the X-Crowdwifi-Shard header the
	// router stamps on proxied answers. Shards appear as traffic reveals
	// them; against a single server the map stays empty and the report's
	// shard section is omitted.
	shardMu     sync.Mutex
	shardTracks map[string]*shardTrack

	drainDelivered atomic.Uint64

	// shed-then-succeed: logical requests that hit at least one 503 but
	// eventually landed. The histogram is the client-side cost of being shed
	// — exactly the latency the server's Retry-After hint is trying to bound.
	shedThenOK        atomic.Uint64
	shedRetryWindow   *obs.WindowedHistogram
	shedRetryMeasured *obs.Histogram

	phaseGauge *obs.Gauge
}

// shedKey carries the per-logical-request shed flag through the retry loop's
// context, tying the attempt-level watcher (under the retrying doer) to the
// request-level observer (over it).
type shedKey struct{}

type shedFlag struct{ seen atomic.Bool }

// attemptWatcher sits UNDER the retrying doer: it sees every individual
// attempt, so a 503 that a later retry recovers from still gets flagged.
type attemptWatcher struct{ next client.HTTPDoer }

func (a attemptWatcher) Do(req *http.Request) (*http.Response, error) {
	resp, err := a.next.Do(req)
	if err == nil && resp.StatusCode == http.StatusServiceUnavailable {
		if f, ok := req.Context().Value(shedKey{}).(*shedFlag); ok {
			f.seen.Store(true)
		}
	}
	return resp, err
}

// shedObserver sits OVER the retrying doer: it plants the flag, times the
// whole logical request (first attempt through final response, backoff
// included), and records the shed-then-succeed latency when the flag fired
// but the request ultimately succeeded. The same vantage point sees the
// router's X-Crowdwifi-Shard header on the final response, so it also feeds
// the per-shard latency breakdown.
type shedObserver struct {
	next client.HTTPDoer
	r    *Runner
}

func (s shedObserver) Do(req *http.Request) (*http.Response, error) {
	f := &shedFlag{}
	req = req.WithContext(context.WithValue(req.Context(), shedKey{}, f))
	start := time.Now()
	resp, err := s.next.Do(req)
	if err == nil {
		d := time.Since(start)
		if f.seen.Load() && resp.StatusCode < 300 {
			s.r.recordShedRetry(d)
		}
		if shard := resp.Header.Get(cluster.ShardHeader); shard != "" {
			s.r.recordShard(shard, d)
		}
	}
	return resp, err
}

// recordShedRetry feeds one shed-then-succeed completion into both latency
// views and the whole-run count.
func (r *Runner) recordShedRetry(d time.Duration) {
	r.shedThenOK.Add(1)
	sec := d.Seconds()
	r.shedRetryWindow.Observe(sec)
	if r.measuring.Load() {
		r.shedRetryMeasured.Observe(sec)
	}
}

// shardTrack mirrors track for one shard's slice of router-proxied traffic:
// the window feeds live views, the measured histogram feeds the report.
type shardTrack struct {
	window   *obs.WindowedHistogram
	measured *obs.Histogram
}

// recordShard feeds one router-proxied completion into the per-shard latency
// views, creating the shard's instruments on first sight.
func (r *Runner) recordShard(shard string, d time.Duration) {
	r.shardMu.Lock()
	t, ok := r.shardTracks[shard]
	if !ok {
		t = &shardTrack{
			window: r.reg.WindowedHistogram("crowdwifi_load_shard_duration_seconds",
				"Client-observed latency of router-proxied requests by owning shard (rolling window).",
				nil, obs.DefaultWindow, obs.DefaultWindowSlots, obs.L("shard", shard)),
			measured: r.reg.Histogram("crowdwifi_load_shard_measured_duration_seconds",
				"Router-proxied request latency by owning shard, measure phase only (source of the run report's shard breakdown).",
				nil, obs.L("shard", shard)),
		}
		r.shardTracks[shard] = t
	}
	r.shardMu.Unlock()
	sec := d.Seconds()
	t.window.Observe(sec)
	if r.measuring.Load() {
		t.measured.Observe(sec)
	}
}

// NewRunner precomputes payload archetypes and builds the fleet. It does not
// issue any traffic; the returned runner is inert until Run.
func NewRunner(cfg Config) (*Runner, error) {
	cfg = cfg.withDefaults()
	if cfg.ServerURL == "" {
		return nil, errors.New("load: Config.ServerURL is required")
	}
	r := &Runner{
		cfg:           cfg,
		reg:           cfg.Registry,
		log:           cfg.Logger,
		clientMetrics: client.NewMetrics(cfg.Registry),
		tracks:        map[string]*track{},
		shardTracks:   map[string]*shardTrack{},
	}
	r.doer = cfg.HTTP
	if r.doer == nil {
		// No circuit breaker on purpose: the generator must keep offering
		// load while the server sheds, or the run would measure the
		// breaker instead of the server. The shed observer/watcher pair
		// brackets the retry loop so shed-then-succeed latency covers the
		// full first-attempt-to-final-ack span; an injected cfg.HTTP owns
		// its own layering and skips this instrumentation.
		//
		// The whole fleet funnels through this one client, so the transport
		// needs a fleet-sized idle pool: DefaultClient keeps 2 idle conns
		// per host, which at thousands of vehicles means a TCP handshake
		// per request — the run would measure connection churn, not the
		// server. A real fleet holds one connection per vehicle.
		transport := http.DefaultTransport.(*http.Transport).Clone()
		transport.MaxIdleConns = 0 // unlimited; one target host anyway
		transport.MaxIdleConnsPerHost = cfg.Vehicles + 64
		fleet := &http.Client{Transport: transport}
		// The retry budget is likewise per-Doer, sized for one client. Left
		// at its default the whole fleet shares one 10-token bucket and a
		// single shed wave exhausts it instantly, parking uploads a real
		// fleet of independent vehicles would have retried. Scale the burst
		// by fleet size; the per-request ratio already scales on its own.
		r.doer = shedObserver{
			r: r,
			next: retry.NewDoer(attemptWatcher{next: fleet},
				retry.Policy{MaxAttempts: cfg.RetryAttempts},
				retry.WithMetrics(retry.NewMetrics(cfg.Registry)),
				retry.WithBudget(retry.BudgetConfig{Burst: 10 * float64(cfg.Vehicles)})),
		}
	}
	for _, ep := range []string{EndpointUpload, EndpointLookup} {
		r.tracks[ep] = &track{
			window: r.reg.WindowedHistogram("crowdwifi_load_request_duration_seconds",
				"Client-observed request latency by endpoint (rolling window feeds /debug/load).",
				nil, obs.DefaultWindow, obs.DefaultWindowSlots, obs.L("endpoint", ep)),
			measured: r.reg.Histogram("crowdwifi_load_measured_duration_seconds",
				"Client-observed request latency by endpoint, measure phase only (source of the run report's quantiles).",
				nil, obs.L("endpoint", ep)),
			ok:     r.outcomeCounter(ep, "ok"),
			queued: r.outcomeCounter(ep, "queued"),
			errs:   r.outcomeCounter(ep, "error"),
		}
	}
	r.shedRetryWindow = r.reg.WindowedHistogram("crowdwifi_load_shed_retry_duration_seconds",
		"First attempt to final ack for uploads shed (503) at least once then delivered (rolling window).",
		nil, obs.DefaultWindow, obs.DefaultWindowSlots)
	r.shedRetryMeasured = r.reg.Histogram("crowdwifi_load_shed_retry_measured_duration_seconds",
		"Shed-then-succeed latency, measure phase only (source of the run report's quantiles).",
		nil)
	r.phaseGauge = r.reg.Gauge("crowdwifi_load_phase",
		"Generator phase: 0 idle, 1 warmup, 2 measure, 3 drain, 4 done.")
	r.reg.Gauge("crowdwifi_load_vehicles", "Simulated fleet size.").Set(float64(cfg.Vehicles))

	payloads, err := buildArchetypes(cfg.Seed, cfg.Archetypes)
	if err != nil {
		return nil, err
	}
	area := sim.UCI().Area
	r.vehicles = make([]*vehicle, cfg.Vehicles)
	for i := range r.vehicles {
		rep := payloads[i%len(payloads)]
		rep.Vehicle = fmt.Sprintf("load-%05d", i)
		r.vehicles[i] = &vehicle{
			cv: &client.CrowdVehicle{
				ID:        rep.Vehicle,
				BaseURL:   cfg.ServerURL,
				HTTP:      r.doer,
				Metrics:   r.clientMetrics,
				Outbox:    client.NewOutbox(cfg.OutboxCap),
				Codec:     cfg.Codec,
				BatchSize: cfg.BatchSize,
			},
			user: &client.UserVehicle{BaseURL: cfg.ServerURL, HTTP: r.doer, Metrics: r.clientMetrics, Codec: cfg.Codec},
			rep:  rep,
			rnd:  rng.New(cfg.Seed).Split(0xdead0000 + uint64(i)),
			area: area,
		}
	}
	return r, nil
}

func (r *Runner) outcomeCounter(ep, outcome string) *obs.Counter {
	return r.reg.Counter("crowdwifi_load_requests_total",
		"Fleet requests issued, by endpoint and outcome (ok, queued to outbox, error).",
		obs.L("endpoint", ep), obs.L("outcome", outcome))
}

// buildArchetypes synthesizes n distinct report payloads by replaying the
// paper's UCI collection drive with different noise seeds and summarizing
// each drive's source-labelled RSS readings into per-AP centroids. Each
// archetype lands on its own road segment so the server's per-segment fusion
// has real work to do.
func buildArchetypes(seed uint64, n int) ([]server.Report, error) {
	scen := sim.UCI()
	out := make([]server.Report, 0, n)
	for i := 0; i < n; i++ {
		ms, err := scen.Drive(sim.DriveConfig{
			Trajectory:  sim.UCIDrive(),
			NumSamples:  64,
			SNR:         30,
			MyopicScale: 10,
		}, rng.New(seed).Split(uint64(i)))
		if err != nil {
			return nil, fmt.Errorf("load: drive synthesis: %w", err)
		}
		type acc struct {
			x, y float64
			n    int
		}
		bySource := map[int]*acc{}
		for _, m := range ms {
			a, ok := bySource[m.Source]
			if !ok {
				a = &acc{}
				bySource[m.Source] = a
			}
			a.x += m.Pos.X
			a.y += m.Pos.Y
			a.n++
		}
		srcs := make([]int, 0, len(bySource))
		for s := range bySource {
			srcs = append(srcs, s)
		}
		sort.Ints(srcs)
		aps := make([]server.APReport, 0, len(srcs))
		for _, s := range srcs {
			a := bySource[s]
			aps = append(aps, server.APReport{
				X:      a.x / float64(a.n),
				Y:      a.y / float64(a.n),
				Credit: float64(a.n),
			})
		}
		out = append(out, server.Report{
			Segment: fmt.Sprintf("load-seg-%02d", i),
			APs:     aps,
		})
	}
	return out, nil
}

func (r *Runner) setPhase(p Phase) {
	r.phase.Store(int32(p))
	r.phaseStart.Store(time.Now().UnixNano())
	r.phaseGauge.Set(float64(p))
}

// CurrentPhase reports the generator's phase; safe from any goroutine.
func (r *Runner) CurrentPhase() Phase { return Phase(r.phase.Load()) }

// record classifies one completed request and feeds both latency views.
func (r *Runner) record(ep string, d time.Duration, err error) {
	t := r.tracks[ep]
	sec := d.Seconds()
	t.window.Observe(sec)
	if r.measuring.Load() {
		t.measured.Observe(sec)
	}
	switch {
	case err == nil:
		t.ok.Inc()
	case errors.Is(err, client.ErrQueued):
		t.queued.Inc()
	default:
		t.errs.Inc()
	}
}

// recordBatch feeds one completed batch upload into the endpoint track:
// latency once per round-trip, outcomes once per report, so uploads/s stays
// a reports-delivered rate and batch runs compare against single-upload
// runs on the same axis.
func (r *Runner) recordBatch(ep string, d time.Duration, out client.BatchOutcome) {
	t := r.tracks[ep]
	sec := d.Seconds()
	t.window.Observe(sec)
	if r.measuring.Load() {
		t.measured.Observe(sec)
	}
	t.ok.Add(uint64(out.Acked))
	t.queued.Add(uint64(out.Queued))
	t.errs.Add(uint64(out.Failed))
}

// drive is one vehicle's closed loop: upload, occasionally look up, think,
// repeat until the context ends.
func (r *Runner) drive(ctx context.Context, v *vehicle) {
	for i := 1; ; i++ {
		if ctx.Err() != nil || r.stopping.Load() {
			// A stopping vehicle ships what it already produced so batch-mode
			// accounting closes its books the same way single mode does.
			r.flushBatch(ctx, v)
			return
		}
		start := time.Now()
		if r.cfg.BatchSize > 1 {
			// One report produced per iteration — identical offered load to a
			// single-upload run — shipped every BatchSize iterations in one
			// round-trip.
			v.pending = append(v.pending, v.rep)
			if len(v.pending) >= r.cfg.BatchSize {
				r.flushBatch(ctx, v)
				if ctx.Err() != nil {
					return
				}
			}
		} else {
			err := v.cv.UploadReport(ctx, v.rep)
			if ctx.Err() != nil && err != nil {
				// Cancelled mid-flight at a phase boundary: the upload parked
				// itself in the outbox and the drain phase will settle it —
				// recording it here would count shutdown noise as traffic.
				return
			}
			r.record(EndpointUpload, time.Since(start), err)
		}
		if r.cfg.LookupEvery > 0 && i%r.cfg.LookupEvery == 0 {
			area := v.lookupArea()
			start = time.Now()
			_, lerr := v.user.LookupContext(ctx, area)
			if ctx.Err() != nil && lerr != nil {
				return
			}
			r.record(EndpointLookup, time.Since(start), lerr)
		}
		if r.cfg.Think > 0 {
			pause := time.Duration((0.5 + v.rnd.Float64()) * float64(r.cfg.Think))
			if sleepCtx(ctx, pause) != nil {
				return
			}
		}
	}
}

// flushBatch ships a vehicle's accumulated reports as one batch round-trip
// and records the outcome. No-op outside batch mode or with nothing pending.
func (r *Runner) flushBatch(ctx context.Context, v *vehicle) {
	if r.cfg.BatchSize <= 1 || len(v.pending) == 0 || ctx.Err() != nil {
		return
	}
	start := time.Now()
	out, err := v.cv.UploadReportBatch(ctx, v.pending)
	v.pending = v.pending[:0]
	if ctx.Err() != nil && err != nil {
		return
	}
	r.recordBatch(EndpointUpload, time.Since(start), out)
}

// lookupArea picks a random query window inside the scenario map, the way a
// user-vehicle asks "what APs are near me".
func (v *vehicle) lookupArea() geo.Rect {
	cx := v.area.Min.X + v.rnd.Float64()*v.area.Width()
	cy := v.area.Min.Y + v.rnd.Float64()*v.area.Height()
	half := 30 + v.rnd.Float64()*50
	return geo.NewRect(geo.Point{X: cx - half, Y: cy - half}, geo.Point{X: cx + half, Y: cy + half})
}

// Run executes warmup → measure → drain and returns the run report. The
// context cancels the whole run; phase durations come from the config.
func (r *Runner) Run(ctx context.Context) (*RunReport, error) {
	r.runStart = time.Now()
	serverStart := r.scrapeServer(ctx)

	driveCtx, stopDrive := context.WithCancel(ctx)
	defer stopDrive()
	var wg sync.WaitGroup
	for _, v := range r.vehicles {
		wg.Add(1)
		go func(v *vehicle) {
			defer wg.Done()
			r.drive(driveCtx, v)
		}(v)
	}
	stopLog := r.startProgressLog()
	defer stopLog()

	r.setPhase(PhaseWarmup)
	if err := sleepCtx(ctx, r.cfg.Warmup); err != nil {
		stopDrive()
		wg.Wait()
		return nil, err
	}

	serverBefore := r.scrapeServer(ctx)
	before := r.snapshot()
	r.setPhase(PhaseMeasure)
	r.measuring.Store(true)
	measureStart := time.Now()
	err := sleepCtx(ctx, r.cfg.Measure)
	r.measuring.Store(false)
	measured := time.Since(measureStart)
	after := r.snapshot()
	serverAfter := r.scrapeServer(ctx)
	if err != nil {
		stopDrive()
		wg.Wait()
		return nil, err
	}

	r.setPhase(PhaseDrain)
	// Graceful fleet stop: flag the vehicles to stop issuing and give
	// in-flight requests a bounded grace period to finish. Hard-cancelling
	// mid-flight leaves requests the server may complete after the client
	// gave up; their outbox replays can outlive the server's idempotency
	// window and double-apply, so the books only balance if the boundary is
	// clean. Stragglers still stuck after the grace (e.g. sleeping out a
	// long Retry-After) are cancelled and settle through the drain phase.
	r.stopping.Store(true)
	fleetDone := make(chan struct{})
	go func() { wg.Wait(); close(fleetDone) }()
	grace := r.cfg.Drain / 2
	select {
	case <-fleetDone:
	case <-time.After(grace):
		stopDrive()
		<-fleetDone
	}
	stopDrive()
	r.drainOutboxes(ctx)
	serverFinal := r.scrapeServer(ctx)
	sloStatus, sloOK := r.scrapeSLO(ctx)
	r.setPhase(PhaseDone)

	return r.buildReport(reportInputs{
		before: before, after: after,
		serverStart: serverStart, serverBefore: serverBefore,
		serverAfter: serverAfter, serverFinal: serverFinal,
		slo: sloStatus, sloOK: sloOK,
		measured: measured,
	}), nil
}

// drainOutboxes flushes every vehicle's parked uploads, bounded by the drain
// budget. DrainOutbox stops on the first transient failure, so each vehicle
// loops until its outbox empties or time runs out, pausing for the server's
// Retry-After hint when one came back with the rejection (a shedding server
// has measured its own drain rate; second-guessing it just feeds the backlog)
// and a short fixed backoff otherwise.
func (r *Runner) drainOutboxes(ctx context.Context) {
	dctx, cancel := context.WithTimeout(ctx, r.cfg.Drain)
	defer cancel()
	sem := make(chan struct{}, 64)
	var wg sync.WaitGroup
	for _, v := range r.vehicles {
		if v.cv.Outbox.Len() == 0 {
			continue
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(v *vehicle) {
			defer wg.Done()
			defer func() { <-sem }()
			for dctx.Err() == nil && v.cv.Outbox.Len() > 0 {
				n, err := v.cv.DrainOutbox(dctx)
				r.drainDelivered.Add(uint64(n))
				if err == nil {
					return
				}
				pause := 200 * time.Millisecond
				if hint := client.RetryAfterHint(err); hint > pause {
					pause = hint
				}
				if sleepCtx(dctx, pause) != nil {
					return
				}
			}
		}(v)
	}
	wg.Wait()
}

// outboxTotals sums fleet outbox state: entries still parked, and entries
// evicted by capacity pressure (each one a lost report).
func (r *Runner) outboxTotals() (remaining int, evicted uint64) {
	for _, v := range r.vehicles {
		remaining += v.cv.Outbox.Len()
		evicted += v.cv.Outbox.Evicted()
	}
	return remaining, evicted
}

// sleepCtx sleeps d or returns the context's error if it ends first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// counterValue reads a counter registered elsewhere on the same registry
// (e.g. by retry.NewMetrics or client.NewMetrics) without duplicating its
// help text — the family's first registration fixed that.
func (r *Runner) counterValue(name string, labels ...obs.Label) uint64 {
	return r.reg.Counter(name, "", labels...).Value()
}
