package load

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"crowdwifi/internal/obs"
	"crowdwifi/internal/obs/trace"
	"crowdwifi/internal/server"
)

// newLoadTarget stands up a real crowd-server (metrics + tracing mounted on
// its own mux, exactly like the production binary) for the fleet to hit.
func newLoadTarget(t *testing.T) (*httptest.Server, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	tracer := trace.NewTracer(trace.Config{
		SampleRate: 1,
		// Big enough that nothing from a short run is evicted, so every
		// exemplar recorded by the RED middleware stays resolvable.
		Capacity:        100000,
		SlowPerEndpoint: 64,
	})
	srv := server.New(server.NewStore(8),
		server.WithMetrics(server.NewMetrics(reg)),
		server.WithTracer(tracer))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, reg
}

func runSmallFleet(t *testing.T, ts *httptest.Server) *RunReport {
	t.Helper()
	r, err := NewRunner(Config{
		ServerURL:   ts.URL,
		Vehicles:    12,
		Warmup:      150 * time.Millisecond,
		Measure:     600 * time.Millisecond,
		Drain:       5 * time.Second,
		Think:       2 * time.Millisecond,
		LookupEvery: 4,
		Archetypes:  3,
		LogEvery:    -1,
	})
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return rep
}

// TestRunReportEndToEnd drives a small fleet against a real server and
// checks the run report's books: traffic flowed, quantiles are populated,
// nothing was lost, and the fleet's acknowledged-upload count matches the
// server's accepted-report count exactly.
func TestRunReportEndToEnd(t *testing.T) {
	ts, _ := newLoadTarget(t)
	rep := runSmallFleet(t, ts)

	if rep.Schema != ReportSchema {
		t.Fatalf("schema = %q, want %q", rep.Schema, ReportSchema)
	}
	upl := rep.Endpoints[EndpointUpload]
	if upl.OK == 0 {
		t.Fatalf("no successful uploads in measure phase: %+v", upl)
	}
	if upl.LatencySeconds.P50 <= 0 || upl.LatencySeconds.P99 < upl.LatencySeconds.P50 {
		t.Fatalf("implausible upload latency stats: %+v", upl.LatencySeconds)
	}
	if look := rep.Endpoints[EndpointLookup]; look.OK == 0 {
		t.Fatalf("no successful lookups in measure phase: %+v", look)
	}
	if rep.Sustained.UploadsPerSec <= 0 {
		t.Fatalf("sustained uploads/s = %v, want > 0", rep.Sustained.UploadsPerSec)
	}
	if rep.Resilience.Lost != 0 {
		t.Fatalf("lost %d reports: %+v", rep.Resilience.Lost, rep.Resilience)
	}
	if !rep.Server.Available {
		t.Fatal("server-side scrape unavailable; /debug/vars or /metrics broke")
	}
	if !rep.Verification.ServerSideAvailable || !rep.Verification.Consistent {
		t.Fatalf("verification failed: %+v", rep.Verification)
	}
	if rep.Verification.AckedUploads == 0 {
		t.Fatal("no uploads acknowledged over the whole run")
	}

	// The generator's own registry should render cleanly too.
	var sb strings.Builder
	if err := obs.NewRegistry().WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
}

// TestSlowestExemplarResolvesToTrace is the observability loop closure: a
// load run leaves trace exemplars on the server's per-route latency
// histograms, and the slowest bucket's exemplar names a trace the server can
// still serve at /debug/traces/{id}.
func TestSlowestExemplarResolvesToTrace(t *testing.T) {
	ts, reg := newLoadTarget(t)
	runSmallFleet(t, ts)

	h := reg.WindowedHistogram("crowdwifi_http_request_duration_seconds", "", nil,
		obs.DefaultWindow, obs.DefaultWindowSlots, obs.L("route", "/v1/reports")).Hist()
	ex := h.SlowestExemplar()
	if ex == nil {
		t.Fatal("no exemplar recorded on the /v1/reports latency histogram")
	}
	if ex.TraceID == "" || ex.Value <= 0 {
		t.Fatalf("malformed exemplar: %+v", ex)
	}

	resp, err := http.Get(ts.URL + "/debug/traces/" + ex.TraceID)
	if err != nil {
		t.Fatalf("GET /debug/traces/%s: %v", ex.TraceID, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/traces/%s = %d, want 200 (body: %s)", ex.TraceID, resp.StatusCode, body)
	}
	if !strings.Contains(string(body), ex.TraceID) {
		t.Fatalf("trace document does not mention its own id %s: %s", ex.TraceID, body)
	}

	// The same exemplar must surface in the server's /debug/vars document,
	// which is how an operator finds it without reading Go.
	var vars struct {
		Exemplars map[string]map[string]obs.Exemplar `json:"crowdwifi_histogram_exemplars"`
	}
	vresp, err := http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatalf("GET /debug/vars: %v", err)
	}
	defer vresp.Body.Close()
	if err := json.NewDecoder(vresp.Body).Decode(&vars); err != nil {
		t.Fatalf("decode /debug/vars: %v", err)
	}
	found := false
	for series, buckets := range vars.Exemplars {
		if !strings.Contains(series, "crowdwifi_http_request_duration_seconds") {
			continue
		}
		for _, e := range buckets {
			if e.TraceID == ex.TraceID {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("slowest exemplar %s not present in /debug/vars exemplars", ex.TraceID)
	}
}

// TestProgressSnapshot exercises the /debug/load document after a run: phase
// settles at done and the totals agree with the run report's whole-run view.
func TestProgressSnapshot(t *testing.T) {
	ts, _ := newLoadTarget(t)
	r, err := NewRunner(Config{
		ServerURL:  ts.URL,
		Vehicles:   4,
		Warmup:     50 * time.Millisecond,
		Measure:    200 * time.Millisecond,
		Drain:      2 * time.Second,
		Archetypes: 2,
		LogEvery:   -1,
	})
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	if _, err := r.Run(context.Background()); err != nil {
		t.Fatalf("Run: %v", err)
	}

	mux := http.NewServeMux()
	r.MountDebug(mux)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/load", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /debug/load = %d", rec.Code)
	}
	var p Progress
	if err := json.Unmarshal(rec.Body.Bytes(), &p); err != nil {
		t.Fatalf("decode /debug/load: %v", err)
	}
	if p.Phase != "done" {
		t.Fatalf("phase = %q, want done", p.Phase)
	}
	if p.Endpoints[EndpointUpload].OK == 0 {
		t.Fatal("progress shows zero successful uploads")
	}
	if p.OutboxDepth != 0 {
		t.Fatalf("outbox depth = %d after drain, want 0", p.OutboxDepth)
	}
}

// TestReportWriteFile round-trips the JSON to disk.
func TestReportWriteFile(t *testing.T) {
	ts, _ := newLoadTarget(t)
	rep := runSmallFleet(t, ts)
	path := t.TempDir() + "/report.json"
	if err := rep.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	var back RunReport
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read back: %v", err)
	}
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("unmarshal round trip: %v", err)
	}
	if back.Schema != ReportSchema || back.Endpoints[EndpointUpload].OK != rep.Endpoints[EndpointUpload].OK {
		t.Fatalf("round trip mismatch: %+v vs %+v", back, rep)
	}
}
