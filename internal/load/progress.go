package load

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// OutcomeCounts is one endpoint's running request tally.
type OutcomeCounts struct {
	Total  uint64 `json:"total"`
	OK     uint64 `json:"ok"`
	Queued uint64 `json:"queued"`
	Errors uint64 `json:"errors"`
}

// WindowStats is one endpoint's rolling-window latency view (seconds).
type WindowStats struct {
	Count uint64  `json:"count"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
}

// Progress is a point-in-time view of the run, served at /debug/load and
// summarized by the periodic log line.
type Progress struct {
	Phase          string                   `json:"phase"`
	PhaseElapsed   float64                  `json:"phaseElapsedSeconds"`
	RunElapsed     float64                  `json:"runElapsedSeconds"`
	Vehicles       int                      `json:"vehicles"`
	Endpoints      map[string]OutcomeCounts `json:"endpoints"`
	Window         map[string]WindowStats   `json:"windowLatencySeconds"`
	Retries        uint64                   `json:"retries"`
	OutboxDepth    int                      `json:"outboxDepth"`
	OutboxEvicted  uint64                   `json:"outboxEvicted"`
	DrainDelivered uint64                   `json:"drainDelivered"`
}

// Progress assembles the current view; safe to call from any goroutine while
// the run is in flight.
func (r *Runner) Progress() Progress {
	now := time.Now()
	p := Progress{
		Phase:     r.CurrentPhase().String(),
		Vehicles:  r.cfg.Vehicles,
		Endpoints: map[string]OutcomeCounts{},
		Window:    map[string]WindowStats{},
		Retries:   r.counterValue("crowdwifi_retry_retries_total"),
	}
	if start := r.phaseStart.Load(); start > 0 {
		p.PhaseElapsed = now.Sub(time.Unix(0, start)).Seconds()
	}
	if !r.runStart.IsZero() {
		p.RunElapsed = now.Sub(r.runStart).Seconds()
	}
	for ep, t := range r.tracks {
		oc := OutcomeCounts{
			OK:     t.ok.Value(),
			Queued: t.queued.Value(),
			Errors: t.errs.Value(),
		}
		oc.Total = oc.OK + oc.Queued + oc.Errors
		p.Endpoints[ep] = oc
		if n := t.window.Count(); n > 0 {
			p.Window[ep] = WindowStats{
				Count: n,
				P50:   t.window.Quantile(0.50),
				P95:   t.window.Quantile(0.95),
				P99:   t.window.Quantile(0.99),
				P999:  t.window.Quantile(0.999),
			}
		}
	}
	depth, evicted := r.outboxTotals()
	p.OutboxDepth = depth
	p.OutboxEvicted = evicted
	p.DrainDelivered = r.drainDelivered.Load()
	return p
}

// MountDebug serves the live progress document at /debug/load.
func (r *Runner) MountDebug(mux *http.ServeMux) {
	mux.HandleFunc("/debug/load", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(r.Progress())
	})
}

// startProgressLog emits the one-line load report every LogEvery until the
// returned stop function runs. Rates are per-interval, so the line answers
// "what is the fleet doing right now".
func (r *Runner) startProgressLog() (stop func()) {
	if r.cfg.LogEvery <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		tick := time.NewTicker(r.cfg.LogEvery)
		defer tick.Stop()
		var last Progress
		lastAt := time.Now()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
			}
			p := r.Progress()
			dt := time.Since(lastAt).Seconds()
			rate := func(ep string) float64 {
				return float64(p.Endpoints[ep].Total-last.Endpoints[ep].Total) / dt
			}
			w := p.Window[EndpointUpload]
			r.log.Info("load progress",
				"phase", p.Phase,
				"elapsed", fmt.Sprintf("%.0fs", p.RunElapsed),
				"upl_s", fmt.Sprintf("%.1f", rate(EndpointUpload)),
				"look_s", fmt.Sprintf("%.1f", rate(EndpointLookup)),
				"p50_ms", fmt.Sprintf("%.1f", w.P50*1000),
				"p99_ms", fmt.Sprintf("%.1f", w.P99*1000),
				"queued", p.Endpoints[EndpointUpload].Queued,
				"errors", p.Endpoints[EndpointUpload].Errors,
				"outbox", p.OutboxDepth,
				"retries", p.Retries,
			)
			last, lastAt = p, time.Now()
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}
