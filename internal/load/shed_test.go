package load

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestShedThenSucceedHistogram drives the built-in (nil-HTTP) transport
// against a server that sheds every other upload with a Retry-After, and
// checks the shed-then-succeed instrumentation: flagged requests that
// eventually land are counted and their first-attempt-to-ack latency is
// recorded in the measure-phase histogram.
func TestShedThenSucceedHistogram(t *testing.T) {
	var n atomic.Uint64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/reports" && n.Add(1)%2 == 1 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "server over capacity", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"accepted":1}`)
	}))
	t.Cleanup(ts.Close)

	r, err := NewRunner(Config{
		ServerURL:   ts.URL,
		Vehicles:    4,
		Warmup:      50 * time.Millisecond,
		Measure:     4 * time.Second,
		Drain:       2 * time.Second,
		LookupEvery: -1,
		Archetypes:  2,
		LogEvery:    -1,
		// nil HTTP on purpose: the shed observer/watcher pair only wraps the
		// built-in retrying transport.
	})
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	if rep.Resilience.ShedThenOK == 0 {
		t.Fatal("ShedThenOK = 0: no shed-then-succeed requests recorded against an alternating 503 server")
	}
	lat := rep.Resilience.ShedRetryLatencySeconds
	if lat.Count == 0 {
		t.Fatal("shed-retry latency histogram empty during measure phase")
	}
	// Retry-After was 1s and the retry policy honors it, so a shed-then-ok
	// request cannot complete faster than the hinted pause.
	if lat.P50 < 0.9 {
		t.Errorf("shed-retry p50 = %.3fs, want ≥ ~1s (Retry-After honored)", lat.P50)
	}
	if got := r.shedThenOK.Load(); got != rep.Resilience.ShedThenOK {
		t.Errorf("report ShedThenOK %d != counter %d", rep.Resilience.ShedThenOK, got)
	}
}
