package load

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"crowdwifi/internal/obs"
	"crowdwifi/internal/obs/slo"
)

// ReportSchema versions the run-report JSON layout; bump it when a field
// changes meaning, not when fields are added.
const ReportSchema = "crowdwifi-load-report/v1"

// snapshot freezes the fleet counters at a phase boundary so measure-phase
// rates are deltas, untouched by warmup and drain traffic.
type snapshot struct {
	when    time.Time
	counts  map[string]map[string]uint64 // endpoint → outcome → value
	retries uint64
	parked  uint64
	drained uint64
	dropped uint64
}

func (r *Runner) snapshot() snapshot {
	s := snapshot{when: time.Now(), counts: map[string]map[string]uint64{}}
	for ep, t := range r.tracks {
		s.counts[ep] = map[string]uint64{
			"ok":     t.ok.Value(),
			"queued": t.queued.Value(),
			"error":  t.errs.Value(),
		}
	}
	s.retries = r.counterValue("crowdwifi_retry_retries_total")
	s.parked = r.counterValue("crowdwifi_client_outbox_enqueued_total")
	s.drained = r.counterValue("crowdwifi_client_outbox_drained_total")
	s.dropped = r.counterValue("crowdwifi_client_outbox_dropped_total", obs.L("reason", "terminal"))
	return s
}

// serverSample is one scrape of the target server's /debug/vars and
// /metrics: enough to report CPU, heap, and ingest-side counter deltas
// without the loader linking against the server at all.
type serverSample struct {
	available  bool
	when       time.Time
	cpuSeconds float64
	heapAlloc  uint64
	goroutines int
	reports    uint64
	shed       uint64
	deduped    uint64
	httpErrors uint64

	// Overload-control surface (absent when the target runs without
	// -overload-mode): degradation mode, state-machine transition count,
	// and the admission controller's admit/shed totals across families.
	overload    bool
	mode        string
	transitions uint64
	admitted    uint64
	admShed     uint64
}

// modeSeverity orders degradation modes worst-last so a multi-shard scrape
// can report the worst shard's mode.
func modeSeverity(mode string) int {
	switch mode {
	case "":
		return -1
	case "healthy":
		return 0
	case "recovering":
		return 1
	case "overloaded":
		return 2
	case "read-only":
		return 3
	}
	return 1
}

// scrapeServer samples every target in Config.ScrapeURLs with a plain HTTP
// client (not the retrying fleet transport, which would pollute the fleet's
// own metrics) and sums the counters across them — against a cluster the
// server-side section then covers all shards, not one. The reported mode is
// the worst across targets. A target that fails to answer is skipped; the
// sample is unavailable only when every target failed.
func (r *Runner) scrapeServer(ctx context.Context) serverSample {
	s := serverSample{when: time.Now()}
	cl := &http.Client{Timeout: 5 * time.Second}

	for _, base := range r.cfg.ScrapeURLs {
		var vars struct {
			Memstats struct {
				HeapAlloc uint64 `json:"HeapAlloc"`
			} `json:"memstats"`
			Process  obs.ProcStats `json:"crowdwifi_process"`
			Overload struct {
				Mode string `json:"mode"`
			} `json:"crowdwifi_overload"`
		}
		if err := getJSON(ctx, cl, base+"/debug/vars", &vars); err != nil {
			continue
		}
		s.cpuSeconds += vars.Process.CPUSeconds
		s.heapAlloc += vars.Memstats.HeapAlloc
		s.goroutines += vars.Process.Goroutines
		if vars.Overload.Mode != "" {
			s.overload = true
			if modeSeverity(vars.Overload.Mode) > modeSeverity(s.mode) {
				s.mode = vars.Overload.Mode
			}
		}

		body, err := getBody(ctx, cl, base+"/metrics")
		if err != nil {
			continue
		}
		counters := parsePromCounters(body)
		s.reports += counters["crowdwifi_server_reports_total"]
		s.shed += counters["crowdwifi_server_shed_requests_total"]
		s.deduped += counters["crowdwifi_server_deduped_requests_total"]
		s.httpErrors += counters["crowdwifi_http_errors_total"]
		s.transitions += counters["crowdwifi_overload_transitions_total"]
		s.admitted += counters["crowdwifi_admission_admitted_total"]
		s.admShed += counters["crowdwifi_admission_shed_total"]
		s.available = true
	}
	return s
}

// scrapeSLO fetches the target's /debug/slo verdicts. It tries the server URL
// first (against a cluster that is the router, whose objectives are the
// user-facing ones) and falls back to the scrape targets, so a bare shard run
// with -scrape pointed at the shard's metrics address still gets verdicts.
func (r *Runner) scrapeSLO(ctx context.Context) (slo.Status, bool) {
	cl := &http.Client{Timeout: 5 * time.Second}
	targets := append([]string{r.cfg.ServerURL}, r.cfg.ScrapeURLs...)
	for _, base := range targets {
		var st slo.Status
		if err := getJSON(ctx, cl, base+"/debug/slo", &st); err != nil || len(st.Objectives) == 0 {
			continue
		}
		return st, true
	}
	return slo.Status{}, false
}

func getJSON(ctx context.Context, cl *http.Client, url string, out any) error {
	body, err := getBody(ctx, cl, url)
	if err != nil {
		return err
	}
	return json.Unmarshal([]byte(body), out)
}

func getBody(ctx context.Context, cl *http.Client, url string) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return "", err
	}
	resp, err := cl.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("load: GET %s: %s", url, resp.Status)
	}
	b, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	return string(b), err
}

// parsePromCounters sums Prometheus text-format samples by family name,
// collapsing labels — exactly what the report needs for totals like
// crowdwifi_http_errors_total across all routes.
func parsePromCounters(body string) map[string]uint64 {
	out := map[string]uint64{}
	for _, line := range strings.Split(body, "\n") {
		if line == "" || line[0] == '#' {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		name := line[:sp]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(line[sp+1:]), 64)
		if err != nil || v < 0 {
			continue
		}
		out[name] += uint64(v)
	}
	return out
}

// LatencyStats summarizes one endpoint's measure-phase latency in seconds.
type LatencyStats struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
}

// latencyStats summarizes a histogram; ok is false when it saw no samples.
func latencyStats(h *obs.Histogram) (stats LatencyStats, ok bool) {
	n := h.Count()
	if n == 0 {
		return LatencyStats{}, false
	}
	return LatencyStats{
		Count: n,
		Mean:  h.Sum() / float64(n),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
	}, true
}

// EndpointReport is one endpoint's measure-phase traffic summary.
type EndpointReport struct {
	Requests       uint64       `json:"requests"`
	OK             uint64       `json:"ok"`
	Queued         uint64       `json:"queued"`
	Errors         uint64       `json:"errors"`
	PerSecond      float64      `json:"perSecond"`
	LatencySeconds LatencyStats `json:"latencySeconds"`
}

// ShardReport is one shard's slice of the router-proxied traffic over the
// measure phase, attributed via the X-Crowdwifi-Shard response header.
type ShardReport struct {
	Requests       uint64       `json:"requests"`
	LatencySeconds LatencyStats `json:"latencySeconds"`
}

// SLOVerdict is one objective's end-of-run state as reported by the target's
// /debug/slo: the shortest window's error and burn rates plus any alerts
// still firing when the run ended.
type SLOVerdict struct {
	Name      string   `json:"name"`
	Target    float64  `json:"target"`
	Healthy   bool     `json:"healthy"`
	ErrorRate float64  `json:"errorRate"`
	BurnRate  float64  `json:"burnRate"`
	Firing    []string `json:"firing,omitempty"`
}

// RunReport is the machine-readable outcome of one load run (the BENCH_*.json
// payload). All latency numbers are seconds; all rates are per second of the
// measure phase.
type RunReport struct {
	Schema    string `json:"schema"`
	Tool      string `json:"tool"`
	Version   string `json:"version"`
	GoVersion string `json:"goVersion"`
	Platform  string `json:"platform"`
	CPUs      int    `json:"cpus"`
	Generated string `json:"generated"`

	Config struct {
		ServerURL      string  `json:"serverUrl"`
		Vehicles       int     `json:"vehicles"`
		WarmupSeconds  float64 `json:"warmupSeconds"`
		MeasureSeconds float64 `json:"measureSeconds"`
		DrainSeconds   float64 `json:"drainSeconds"`
		ThinkSeconds   float64 `json:"thinkSeconds"`
		LookupEvery    int     `json:"lookupEvery"`
		Archetypes     int     `json:"archetypes"`
		RetryAttempts  int     `json:"retryAttempts"`
		OutboxCap      int     `json:"outboxCap"`
		Seed           uint64  `json:"seed"`
		Codec          string  `json:"codec"`
		BatchSize      int     `json:"batchSize,omitempty"`
	} `json:"config"`

	// Sustained rates over the measure phase.
	Sustained struct {
		UploadsPerSec  float64 `json:"uploadsPerSec"`
		LookupsPerSec  float64 `json:"lookupsPerSec"`
		RequestsPerSec float64 `json:"requestsPerSec"`
		MeasureSeconds float64 `json:"measureSeconds"`
	} `json:"sustained"`

	// Endpoints holds measure-phase per-endpoint breakdowns.
	Endpoints map[string]EndpointReport `json:"endpoints"`

	// Shards breaks router-proxied latency down by owning shard (absent when
	// the target is a single server, which never stamps the shard header).
	// Comparing a shard's quantiles against the upload endpoint's shows the
	// router's own overhead: endpoint latency is the client-to-router span,
	// shard latency attributes the same requests to whichever shard served
	// them.
	Shards map[string]ShardReport `json:"shards,omitempty"`

	// Resilience summarizes the delivery machinery over the whole run
	// (warmup through drain): zero Lost is the acceptance bar.
	Resilience struct {
		Retries         uint64 `json:"retries"`
		Parked          uint64 `json:"parked"`
		DrainDelivered  uint64 `json:"drainDelivered"`
		DrainDropped    uint64 `json:"drainDropped"`
		OutboxRemaining int    `json:"outboxRemaining"`
		OutboxEvicted   uint64 `json:"outboxEvicted"`
		UploadErrors    uint64 `json:"uploadErrors"`
		Lost            uint64 `json:"lost"`
		// Measure-phase shed/park rates relative to upload attempts.
		ShedRate  float64 `json:"shedRate"`
		ParkRate  float64 `json:"parkRate"`
		RetryRate float64 `json:"retryRate"`
		// ShedThenOK counts logical uploads that hit at least one 503 and
		// were still delivered (whole run); the latency stats are the
		// measure-phase cost of being shed, first attempt to final ack.
		ShedThenOK              uint64       `json:"shedThenOK"`
		ShedRetryLatencySeconds LatencyStats `json:"shedRetryLatencySeconds"`
	} `json:"resilience"`

	// Server holds target-side deltas over the measure phase, scraped from
	// /debug/vars and /metrics. Absent (available=false) when the target
	// does not expose them.
	Server struct {
		Available       bool    `json:"available"`
		CPUSecondsDelta float64 `json:"cpuSecondsDelta"`
		CPUUtilization  float64 `json:"cpuUtilization"`
		HeapAllocBytes  uint64  `json:"heapAllocBytes"`
		Goroutines      int     `json:"goroutines"`
		ReportsDelta    uint64  `json:"reportsDelta"`
		ShedDelta       uint64  `json:"shedDelta"`
		DedupedDelta    uint64  `json:"dedupedDelta"`
	} `json:"server"`

	// Overload summarizes the target's admission control over the measure
	// phase (absent when the server runs without -overload-mode): degradation
	// mode at the window edges, state-machine transitions, and the admission
	// controller's admit/shed deltas summed across endpoint families.
	Overload struct {
		Available          bool   `json:"available"`
		ModeBefore         string `json:"modeBefore"`
		ModeAfter          string `json:"modeAfter"`
		ModeFinal          string `json:"modeFinal"`
		TransitionsDelta   uint64 `json:"transitionsDelta"`
		TransitionsRun     uint64 `json:"transitionsRun"`
		AdmittedDelta      uint64 `json:"admittedDelta"`
		AdmissionShedDelta uint64 `json:"admissionShedDelta"`
	} `json:"overload"`

	// SLO carries the target's end-of-run /debug/slo verdicts (absent when
	// the target does not expose the SLO surface). Healthy is the AND across
	// objectives.
	SLO struct {
		Available  bool         `json:"available"`
		Healthy    bool         `json:"healthy"`
		Objectives []SLOVerdict `json:"objectives,omitempty"`
	} `json:"slo"`

	// Verification closes the books across the whole run: every upload the
	// fleet considers acknowledged against the server's accepted count.
	Verification struct {
		AckedUploads        uint64 `json:"ackedUploads"`
		ServerReportsDelta  uint64 `json:"serverReportsDelta"`
		ServerSideAvailable bool   `json:"serverSideAvailable"`
		Consistent          bool   `json:"consistent"`
	} `json:"verification"`
}

type reportInputs struct {
	before, after                                       snapshot
	serverStart, serverBefore, serverAfter, serverFinal serverSample
	slo                                                 slo.Status
	sloOK                                               bool
	measured                                            time.Duration
}

func (r *Runner) buildReport(in reportInputs) *RunReport {
	rep := &RunReport{
		Schema:    ReportSchema,
		Tool:      "crowdwifi-load",
		Version:   obs.Version,
		GoVersion: runtime.Version(),
		Platform:  runtime.GOOS + "/" + runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Generated: time.Now().UTC().Format(time.RFC3339),
		Endpoints: map[string]EndpointReport{},
	}
	rep.Config.ServerURL = r.cfg.ServerURL
	rep.Config.Vehicles = r.cfg.Vehicles
	rep.Config.WarmupSeconds = r.cfg.Warmup.Seconds()
	rep.Config.MeasureSeconds = r.cfg.Measure.Seconds()
	rep.Config.DrainSeconds = r.cfg.Drain.Seconds()
	rep.Config.ThinkSeconds = r.cfg.Think.Seconds()
	rep.Config.LookupEvery = r.cfg.LookupEvery
	rep.Config.Archetypes = r.cfg.Archetypes
	rep.Config.RetryAttempts = r.cfg.RetryAttempts
	rep.Config.OutboxCap = r.cfg.OutboxCap
	rep.Config.Seed = r.cfg.Seed
	rep.Config.Codec = r.cfg.Codec
	if rep.Config.Codec == "" {
		rep.Config.Codec = "json"
	}
	rep.Config.BatchSize = r.cfg.BatchSize

	secs := in.measured.Seconds()
	if secs <= 0 {
		secs = 1e-9
	}
	var uploadsOK, totalReq uint64
	for ep, t := range r.tracks {
		b, a := in.before.counts[ep], in.after.counts[ep]
		e := EndpointReport{
			OK:     a["ok"] - b["ok"],
			Queued: a["queued"] - b["queued"],
			Errors: a["error"] - b["error"],
		}
		e.Requests = e.OK + e.Queued + e.Errors
		e.PerSecond = float64(e.Requests) / secs
		if stats, ok := latencyStats(t.measured); ok {
			e.LatencySeconds = stats
		}
		rep.Endpoints[ep] = e
		totalReq += e.Requests
		if ep == EndpointUpload {
			uploadsOK = e.OK
		}
	}
	rep.Sustained.UploadsPerSec = float64(uploadsOK) / secs
	rep.Sustained.LookupsPerSec = float64(rep.Endpoints[EndpointLookup].OK) / secs
	rep.Sustained.RequestsPerSec = float64(totalReq) / secs
	rep.Sustained.MeasureSeconds = secs

	// Whole-run resilience accounting.
	final := r.snapshot()
	remaining, evicted := r.outboxTotals()
	res := &rep.Resilience
	res.Retries = final.retries
	res.Parked = final.parked
	res.DrainDelivered = r.drainDelivered.Load()
	res.DrainDropped = final.dropped
	res.OutboxRemaining = remaining
	res.OutboxEvicted = evicted
	res.UploadErrors = final.counts[EndpointUpload]["error"]
	res.Lost = res.UploadErrors + res.DrainDropped + res.OutboxEvicted + uint64(remaining)
	res.ShedThenOK = r.shedThenOK.Load()
	if r.shedRetryMeasured != nil {
		if stats, ok := latencyStats(r.shedRetryMeasured); ok {
			res.ShedRetryLatencySeconds = stats
		}
	}

	// Per-shard breakdown of the router-proxied traffic (measure phase only).
	r.shardMu.Lock()
	for id, t := range r.shardTracks {
		if stats, ok := latencyStats(t.measured); ok {
			if rep.Shards == nil {
				rep.Shards = map[string]ShardReport{}
			}
			rep.Shards[id] = ShardReport{Requests: stats.Count, LatencySeconds: stats}
		}
	}
	r.shardMu.Unlock()

	upl := rep.Endpoints[EndpointUpload]
	if upl.Requests > 0 {
		res.ParkRate = float64(upl.Queued) / float64(upl.Requests)
		res.RetryRate = float64(in.after.retries-in.before.retries) / float64(upl.Requests)
		if in.serverBefore.available && in.serverAfter.available {
			res.ShedRate = float64(in.serverAfter.shed-in.serverBefore.shed) / float64(upl.Requests)
		}
	}

	if in.serverBefore.available && in.serverAfter.available {
		srv := &rep.Server
		srv.Available = true
		srv.CPUSecondsDelta = in.serverAfter.cpuSeconds - in.serverBefore.cpuSeconds
		if srv.CPUSecondsDelta < 0 {
			srv.CPUSecondsDelta = 0 // /proc/self/stat unavailable → -1 samples
		}
		srv.CPUUtilization = srv.CPUSecondsDelta / secs
		srv.HeapAllocBytes = in.serverAfter.heapAlloc
		srv.Goroutines = in.serverAfter.goroutines
		srv.ReportsDelta = in.serverAfter.reports - in.serverBefore.reports
		srv.ShedDelta = in.serverAfter.shed - in.serverBefore.shed
		srv.DedupedDelta = in.serverAfter.deduped - in.serverBefore.deduped
	}

	if in.serverBefore.overload && in.serverAfter.overload {
		ov := &rep.Overload
		ov.Available = true
		ov.ModeBefore = in.serverBefore.mode
		ov.ModeAfter = in.serverAfter.mode
		ov.ModeFinal = in.serverFinal.mode
		ov.TransitionsDelta = in.serverAfter.transitions - in.serverBefore.transitions
		if in.serverStart.overload && in.serverFinal.overload {
			ov.TransitionsRun = in.serverFinal.transitions - in.serverStart.transitions
		}
		ov.AdmittedDelta = in.serverAfter.admitted - in.serverBefore.admitted
		ov.AdmissionShedDelta = in.serverAfter.admShed - in.serverBefore.admShed
	}

	// End-of-run SLO verdicts from the target's own burn-rate engine.
	if in.sloOK {
		s := &rep.SLO
		s.Available = true
		s.Healthy = true
		for _, o := range in.slo.Objectives {
			v := SLOVerdict{Name: o.Name, Target: o.Target, Healthy: o.Healthy}
			if len(o.Windows) > 0 {
				v.ErrorRate = o.Windows[0].ErrorRate
				v.BurnRate = o.Windows[0].BurnRate
			}
			for _, a := range o.Alerts {
				if a.Firing {
					v.Firing = append(v.Firing, a.Name)
				}
			}
			if !o.Healthy {
				s.Healthy = false
			}
			s.Objectives = append(s.Objectives, v)
		}
	}

	// Every upload the fleet believes landed, against the server's accepted
	// count over the same span. Duplicate deliveries (a timeout the server
	// actually served, replayed from the outbox) are answered from the
	// idempotency cache, so the server-side count stays exact.
	ver := &rep.Verification
	ver.AckedUploads = final.counts[EndpointUpload]["ok"] + res.DrainDelivered
	if in.serverStart.available && in.serverFinal.available {
		ver.ServerSideAvailable = true
		ver.ServerReportsDelta = in.serverFinal.reports - in.serverStart.reports
		ver.Consistent = ver.ServerReportsDelta == ver.AckedUploads
	}
	return rep
}

// WriteFile writes the report as indented JSON; "-" or "" selects stdout.
func (rep *RunReport) WriteFile(path string) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if path == "" || path == "-" {
		_, err = os.Stdout.Write(b)
		return err
	}
	return os.WriteFile(path, b, 0o644)
}
