package load

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"crowdwifi/internal/cluster"
	"crowdwifi/internal/obs"
	"crowdwifi/internal/obs/slo"
	"crowdwifi/internal/server"
)

// TestRunAgainstRouterFrontedCluster drives the fleet at a router fronting
// two shards and scrapes both shards for the server-side report section.
// The books must still balance: nothing lost, and the acked-upload count
// must equal the reports counter summed across the shards — which is the
// whole point of Config.ScrapeURLs. The router carries an SLO engine and
// stamps the shard header, so the report's shard breakdown and SLO verdict
// sections must come back populated too.
func TestRunAgainstRouterFrontedCluster(t *testing.T) {
	members := []string{"a", "b"}
	shards := make(map[string]*httptest.Server, len(members))
	for _, id := range members {
		reg := obs.NewRegistry()
		srv := server.New(server.NewStore(8),
			server.WithMetrics(server.NewMetrics(reg)),
			server.WithCluster(server.ClusterOptions{Self: id, Members: members}))
		ts := httptest.NewServer(srv)
		t.Cleanup(ts.Close)
		shards[id] = ts
	}

	routerReg := obs.NewRegistry()
	rt, err := cluster.NewRouter(cluster.RouterOptions{
		Peers: []cluster.Peer{
			{ID: "a", URL: shards["a"].URL},
			{ID: "b", URL: shards["b"].URL},
		},
		Registry: routerReg,
	})
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	engine := slo.New(slo.Config{Objectives: cluster.SLOObjectives(routerReg), Registry: routerReg})
	mux := http.NewServeMux()
	mux.Handle("/", rt)
	mux.Handle("/debug/slo", engine.Handler())
	router := httptest.NewServer(mux)
	t.Cleanup(router.Close)

	r, err := NewRunner(Config{
		ServerURL:   router.URL,
		ScrapeURLs:  []string{shards["a"].URL, shards["b"].URL},
		Vehicles:    8,
		Warmup:      100 * time.Millisecond,
		Measure:     400 * time.Millisecond,
		Drain:       5 * time.Second,
		Think:       2 * time.Millisecond,
		LookupEvery: 4,
		Archetypes:  4,
		LogEvery:    -1,
	})
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	if upl := rep.Endpoints[EndpointUpload]; upl.OK == 0 {
		t.Fatalf("no successful uploads through the router: %+v", upl)
	}
	if look := rep.Endpoints[EndpointLookup]; look.OK == 0 {
		t.Fatalf("no successful scatter-gather lookups: %+v", look)
	}
	if rep.Resilience.Lost != 0 {
		t.Fatalf("lost %d reports behind the router: %+v", rep.Resilience.Lost, rep.Resilience)
	}
	if !rep.Server.Available {
		t.Fatal("multi-shard scrape unavailable; shard /debug/vars or /metrics broke")
	}
	if !rep.Verification.ServerSideAvailable {
		t.Fatalf("server-side verification unavailable: %+v", rep.Verification)
	}
	if !rep.Verification.Consistent {
		t.Fatalf("acked uploads do not match the summed shard counters: %+v", rep.Verification)
	}
	if rep.Verification.AckedUploads == 0 {
		t.Fatal("no uploads acknowledged over the whole run")
	}

	if len(rep.Shards) == 0 {
		t.Fatalf("no per-shard latency breakdown captured from %s headers", cluster.ShardHeader)
	}
	for id, sh := range rep.Shards {
		if sh.Requests == 0 {
			t.Errorf("shard %s breakdown has zero requests", id)
		}
	}

	if !rep.SLO.Available {
		t.Fatal("SLO verdicts unavailable despite /debug/slo on the router")
	}
	if len(rep.SLO.Objectives) != 2 {
		t.Fatalf("SLO verdicts = %+v, want 2 objectives", rep.SLO.Objectives)
	}
	if !rep.SLO.Healthy {
		t.Fatalf("SLO unhealthy over a clean run: %+v", rep.SLO.Objectives)
	}
}
