package load

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"crowdwifi/internal/cluster"
	"crowdwifi/internal/obs"
	"crowdwifi/internal/server"
)

// TestRunAgainstRouterFrontedCluster drives the fleet at a router fronting
// two shards and scrapes both shards for the server-side report section.
// The books must still balance: nothing lost, and the acked-upload count
// must equal the reports counter summed across the shards — which is the
// whole point of Config.ScrapeURLs.
func TestRunAgainstRouterFrontedCluster(t *testing.T) {
	members := []string{"a", "b"}
	shards := make(map[string]*httptest.Server, len(members))
	for _, id := range members {
		reg := obs.NewRegistry()
		srv := server.New(server.NewStore(8),
			server.WithMetrics(server.NewMetrics(reg)),
			server.WithCluster(server.ClusterOptions{Self: id, Members: members}))
		ts := httptest.NewServer(srv)
		t.Cleanup(ts.Close)
		shards[id] = ts
	}

	rt, err := cluster.NewRouter(cluster.RouterOptions{
		Peers: []cluster.Peer{
			{ID: "a", URL: shards["a"].URL},
			{ID: "b", URL: shards["b"].URL},
		},
	})
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	router := httptest.NewServer(rt)
	t.Cleanup(router.Close)

	r, err := NewRunner(Config{
		ServerURL:   router.URL,
		ScrapeURLs:  []string{shards["a"].URL, shards["b"].URL},
		Vehicles:    8,
		Warmup:      100 * time.Millisecond,
		Measure:     400 * time.Millisecond,
		Drain:       5 * time.Second,
		Think:       2 * time.Millisecond,
		LookupEvery: 4,
		Archetypes:  4,
		LogEvery:    -1,
	})
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	if upl := rep.Endpoints[EndpointUpload]; upl.OK == 0 {
		t.Fatalf("no successful uploads through the router: %+v", upl)
	}
	if look := rep.Endpoints[EndpointLookup]; look.OK == 0 {
		t.Fatalf("no successful scatter-gather lookups: %+v", look)
	}
	if rep.Resilience.Lost != 0 {
		t.Fatalf("lost %d reports behind the router: %+v", rep.Resilience.Lost, rep.Resilience)
	}
	if !rep.Server.Available {
		t.Fatal("multi-shard scrape unavailable; shard /debug/vars or /metrics broke")
	}
	if !rep.Verification.ServerSideAvailable {
		t.Fatalf("server-side verification unavailable: %+v", rep.Verification)
	}
	if !rep.Verification.Consistent {
		t.Fatalf("acked uploads do not match the summed shard counters: %+v", rep.Verification)
	}
	if rep.Verification.AckedUploads == 0 {
		t.Fatal("no uploads acknowledged over the whole run")
	}
}
