package testbed

import (
	"math"
	"testing"

	"crowdwifi/internal/rng"
)

func TestScenarioMatchesPaper(t *testing.T) {
	sc := Scenario()
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(sc.APs) != 6 {
		t.Fatalf("APs = %d, want 6 Open-Mesh nodes", len(sc.APs))
	}
	if sc.Area.Width() != 100 || sc.Area.Height() != 100 {
		t.Fatalf("area %vx%v, want 100x100", sc.Area.Width(), sc.Area.Height())
	}
	if sc.Lattice != 10 {
		t.Fatalf("lattice %v, want 10 (paper)", sc.Lattice)
	}
	if math.Abs(sc.Radius-30) > 1e-9 {
		t.Fatalf("radius %v, want ~30 (paper)", sc.Radius)
	}
	for i, ap := range sc.APs {
		if !sc.Area.Contains(ap) {
			t.Fatalf("AP %d outside the area", i)
		}
	}
}

func TestDriveLoopCoversAllNodes(t *testing.T) {
	sc := Scenario()
	pts := DriveLoop().SampleByDistance(2)
	for i, ap := range sc.APs {
		best := math.Inf(1)
		for _, p := range pts {
			if d := p.Dist(ap); d < best {
				best = d
			}
		}
		if best > sc.Radius {
			t.Fatalf("loop never enters node %d's range (closest %.1f m)", i, best)
		}
	}
}

func TestCollectSampleCountDropsWithSpeed(t *testing.T) {
	sc := Scenario()
	var prev int
	for i, speed := range PaperSpeeds() {
		run, err := Collect(sc, speed, 1, rng.New(uint64(i+1)))
		if err != nil {
			t.Fatal(err)
		}
		if run.SpeedMph != speed {
			t.Fatalf("run speed %v", run.SpeedMph)
		}
		if i > 0 && run.Samples >= prev {
			t.Fatalf("samples did not drop with speed: %d mph → %d samples (prev %d)",
				int(speed), run.Samples, prev)
		}
		prev = run.Samples
	}
}

func TestCollectPhysicalSampleCount(t *testing.T) {
	sc := Scenario()
	run, err := Collect(sc, 45, 1, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	// Loop length / (45 mph in m/s · 1 s) — every sample in range on this
	// compact loop.
	want := int(DriveLoop().Length() / (45 * 0.44704))
	if run.Samples > want || run.Samples < want-5 {
		t.Fatalf("samples = %d, want ≈ %d", run.Samples, want)
	}
}

func TestCollectErrors(t *testing.T) {
	sc := Scenario()
	if _, err := Collect(sc, 0, 1, rng.New(1)); err == nil {
		t.Fatal("expected error for zero speed")
	}
	if _, err := Collect(sc, 100000, 1, rng.New(1)); err == nil {
		t.Fatal("expected error for absurd speed (too few samples)")
	}
}

func TestCollectLabelsValid(t *testing.T) {
	sc := Scenario()
	run, err := Collect(sc, 20, 1, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range run.Measurements {
		if m.Source < 0 || m.Source >= len(sc.APs) {
			t.Fatalf("measurement %d source %d", i, m.Source)
		}
	}
}

func TestSpeedInflatesVariance(t *testing.T) {
	// Statistical check: residuals around the channel mean should spread
	// more at 45 mph than at 20 mph.
	sc := Scenario()
	spread := func(speed float64) float64 {
		var ss float64
		var n int
		for trial := 0; trial < 30; trial++ {
			run, err := Collect(sc, speed, 1, rng.New(uint64(100+trial)))
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range run.Measurements {
				resid := m.RSS - sc.Channel.MeanRSS(m.Pos.Dist(sc.APs[m.Source]))
				ss += resid * resid
				n++
			}
		}
		return math.Sqrt(ss / float64(n))
	}
	s20, s45 := spread(20), spread(45)
	if s45 <= s20 {
		t.Fatalf("variance did not grow with speed: 20 mph σ=%.2f, 45 mph σ=%.2f", s20, s45)
	}
}

func TestCollectMultiLapScalesSamples(t *testing.T) {
	sc := Scenario()
	one, err := Collect(sc, 20, 1, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	three, err := Collect(sc, 20, 3, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if three.Samples < 2*one.Samples {
		t.Fatalf("3 laps = %d samples, 1 lap = %d; want ~3x", three.Samples, one.Samples)
	}
}

func TestDefaultLaps(t *testing.T) {
	sc := Scenario()
	def, err := Collect(sc, 20, 0, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := Collect(sc, 20, DefaultLaps, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	if def.Samples != explicit.Samples {
		t.Fatalf("default laps %d samples != explicit %d", def.Samples, explicit.Samples)
	}
}
