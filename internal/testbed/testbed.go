// Package testbed generates the UCI campus testbed scenario of Section 6.2,
// replacing the paper's physical Open-Mesh OM1P deployment: six APs across a
// 100 m × 100 m area (two in the Graduate Division Office, one each in the
// Barclay Theatre, the Hill Bookstore, Starbucks, and the Student Center),
// a 10 m lattice, ~30 m transmission radius, and drive-by collection at 20,
// 35 and 45 mph. Higher speed means fewer samples per metre of road and
// larger effective channel variance — the two testbed properties the
// evaluation depends on.
package testbed

import (
	"errors"
	"fmt"

	"crowdwifi/internal/geo"
	"crowdwifi/internal/radio"
	"crowdwifi/internal/rng"
	"crowdwifi/internal/sim"
)

// Scenario returns the six-AP testbed world. Open-Mesh OM1P nodes transmit
// at lower power than the campus APs of the simulation scenario; the channel
// uses a 30 m effective radius with an indoor-grade path loss exponent
// (nodes sit inside buildings).
func Scenario() sim.Scenario {
	return sim.Scenario{
		Name: "uci-testbed",
		Area: geo.NewRect(geo.Point{X: 0, Y: 0}, geo.Point{X: 100, Y: 100}),
		APs: []geo.Point{
			{X: 20, Y: 70}, // Graduate Division Office (node 1)
			{X: 30, Y: 80}, // Graduate Division Office (node 2)
			{X: 70, Y: 80}, // Irvine Barclay Theatre
			{X: 80, Y: 40}, // The Hill Bookstore
			{X: 50, Y: 20}, // Starbucks
			{X: 20, Y: 30}, // UCI Student Center
		},
		Channel: radio.Channel{
			TxPower:     15, // OM1P-class radio
			RefLoss:     45.6,
			RefDist:     1,
			Exponent:    2.4, // indoor nodes heard outdoors
			ShadowSigma: 1.5,
		},
		Radius:  30,
		Lattice: 10,
	}
}

// DriveLoop returns the vehicle's loop around the campus block, passing near
// every node with several turns.
func DriveLoop() *geo.Trajectory {
	t, err := geo.NewTrajectory([]geo.Point{
		{X: 10, Y: 10},
		{X: 55, Y: 12},
		{X: 90, Y: 30},
		{X: 88, Y: 55},
		{X: 75, Y: 88},
		{X: 40, Y: 90},
		{X: 12, Y: 75},
		{X: 14, Y: 40},
		{X: 10, Y: 10},
	})
	if err != nil {
		panic(fmt.Sprintf("testbed: invalid drive loop: %v", err))
	}
	return t
}

// Run describes one collection pass at a given speed.
type Run struct {
	// SpeedMph is the average driving speed.
	SpeedMph float64
	// Samples is the number of RSS readings collected on the loop.
	Samples int
	// Measurements is the collected labelled RSS series.
	Measurements []radio.Measurement
}

// beaconIntervalS is the scan interval of the RSS collector (one scan per
// second, matching the ThinkPad collector's behaviour).
const beaconIntervalS = 1.0

// DefaultLaps is how many times the collection vehicle repeats the loop
// (the paper's sample counts at 45 mph imply several passes).
const DefaultLaps = 3

// Collect drives the loop laps times at the given speed and returns the run
// (laps ≤ 0 selects DefaultLaps). The sample count follows from physics:
// laps · loop length / (speed · scan interval), so a 45 mph run yields fewer
// readings than a 20 mph run. Speed also inflates the shadowing variance
// slightly (short dwell time defeats averaging over fast fading).
func Collect(sc sim.Scenario, speedMph float64, laps int, r *rng.RNG) (*Run, error) {
	if speedMph <= 0 {
		return nil, errors.New("testbed: speed must be positive")
	}
	if laps <= 0 {
		laps = DefaultLaps
	}
	single := DriveLoop()
	wps := single.Waypoints()
	loopPts := make([]geo.Point, 0, laps*len(wps))
	for lap := 0; lap < laps; lap++ {
		start := 0
		if lap > 0 {
			start = 1 // skip the duplicated joint waypoint
		}
		loopPts = append(loopPts, wps[start:]...)
	}
	tr, err := geo.NewTrajectory(loopPts)
	if err != nil {
		return nil, err
	}
	mps := geo.MphToMps(speedMph)
	n := int(tr.Length() / (mps * beaconIntervalS))
	if n < 2 {
		return nil, fmt.Errorf("testbed: speed %.0f mph leaves %d samples on the loop", speedMph, n)
	}
	// Speed-dependent variance inflation: +0.03 dB per mph over the channel
	// baseline, a mild fit to the paper's observation that faster passes
	// estimate worse.
	scFast := sc
	scFast.Channel.ShadowSigma = sc.Channel.ShadowSigma + 0.03*speedMph
	ms, err := scFast.Drive(sim.DriveConfig{
		Trajectory:     tr,
		NumSamples:     n,
		SampleInterval: beaconIntervalS,
	}, r)
	if err != nil {
		return nil, err
	}
	return &Run{SpeedMph: speedMph, Samples: len(ms), Measurements: ms}, nil
}

// PaperSpeeds are the three average speeds of Section 6.2.
func PaperSpeeds() []float64 { return []float64{20, 35, 45} }
