package obs

import (
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRegistryConcurrentScrapeHighCardinality hammers one registry from
// writer goroutines that keep minting new label combinations (the worst-case
// cardinality pattern: per-route, per-code, per-vehicle labels all growing
// mid-scrape) while scrapers concurrently render the Prometheus exposition,
// compute quantiles, and collect exemplars. Run under -race this pins down
// the registry's central claim: scrapes stay consistent while the series set
// is still growing.
func TestRegistryConcurrentScrapeHighCardinality(t *testing.T) {
	r := NewRegistry()
	const (
		writers    = 4
		seriesPerG = 300
	)

	var writerWG, scraperWG sync.WaitGroup
	stop := make(chan struct{})

	for g := 0; g < writers; g++ {
		writerWG.Add(1)
		go func(g int) {
			defer writerWG.Done()
			for i := 0; i < seriesPerG; i++ {
				id := fmt.Sprintf("%d-%d", g, i)
				r.Counter("race_requests_total", "test",
					L("route", "/v1/x"), L("vehicle", id)).Add(uint64(i))
				r.Gauge("race_depth", "test", L("vehicle", id)).Set(float64(i))
				h := r.Histogram("race_latency_seconds", "test", nil, L("vehicle", id))
				h.ObserveWithExemplar(float64(i%20)/10, "trace-"+id)
				w := r.WindowedHistogram("race_window_seconds", "test", nil,
					time.Second, 4, L("vehicle", id))
				w.Observe(float64(i%7) / 10)
				w.Quantile(0.99)
			}
		}(g)
	}

	for s := 0; s < 2; s++ {
		scraperWG.Add(1)
		go func() {
			defer scraperWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := r.WritePrometheus(io.Discard); err != nil {
					t.Errorf("WritePrometheus: %v", err)
					return
				}
				r.Quantiles()
				r.Exemplars()
				rec := httptest.NewRecorder()
				varsHandler(r).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/vars", nil))
			}
		}()
	}

	writerWG.Wait()
	close(stop)
	scraperWG.Wait()

	// Post-race sanity: the full exposition renders every family exactly
	// once and carries the expected series count.
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatalf("final WritePrometheus: %v", err)
	}
	out := sb.String()
	if got := strings.Count(out, "# TYPE race_latency_seconds "); got != 1 {
		t.Fatalf("race_latency_seconds TYPE rendered %d times, want 1", got)
	}
	if got := strings.Count(out, "race_depth{"); got != writers*seriesPerG {
		t.Fatalf("race_depth series = %d, want %d", got, writers*seriesPerG)
	}
	// Only the exemplared family contributes: one exemplar per series.
	if got := len(r.Exemplars()); got != writers*seriesPerG {
		t.Fatalf("exemplared series = %d, want %d", got, writers*seriesPerG)
	}
}
