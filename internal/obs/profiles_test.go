package obs

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func testProfiler(t *testing.T) *Profiler {
	t.Helper()
	p := NewProfiler(ProfilerConfig{
		Interval:    time.Hour, // Run never ticks in tests; CaptureOnce drives
		CPUDuration: 20 * time.Millisecond,
		Keep:        2,
	})
	p.CaptureOnce(context.Background())
	return p
}

func TestProfilerCaptureAndGet(t *testing.T) {
	p := testProfiler(t)
	infos := p.Profiles()
	kinds := map[string]bool{}
	for _, in := range infos {
		kinds[in.Kind] = true
		if in.Bytes <= 0 {
			t.Errorf("profile %s is empty", in.ID)
		}
		data, ok := p.Get(in.ID)
		if !ok || len(data) != in.Bytes {
			t.Errorf("Get(%s) = %d bytes, ok=%v, want %d", in.ID, len(data), ok, in.Bytes)
		}
	}
	if !kinds["cpu"] || !kinds["heap"] {
		t.Fatalf("capture produced kinds %v, want cpu and heap", kinds)
	}
	if _, ok := p.Get("cpu-999"); ok {
		t.Fatal("Get of unknown id succeeded")
	}
}

func TestProfilerRingBounded(t *testing.T) {
	p := testProfiler(t)
	for i := 0; i < 3; i++ {
		p.CaptureOnce(context.Background())
	}
	perKind := map[string]int{}
	for _, in := range p.Profiles() {
		perKind[in.Kind]++
	}
	for kind, n := range perKind {
		if n > 2 {
			t.Errorf("%s ring holds %d snapshots, want <= Keep=2", kind, n)
		}
	}
}

func TestProfilerHandler(t *testing.T) {
	p := testProfiler(t)
	mux := http.NewServeMux()
	MountProfiles(mux, p)

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/profiles", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("listing status = %d", rec.Code)
	}
	var listing struct {
		Profiles []ProfileInfo `json:"profiles"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &listing); err != nil {
		t.Fatalf("decode listing: %v: %s", err, rec.Body.String())
	}
	if len(listing.Profiles) == 0 {
		t.Fatal("empty profile listing after a capture")
	}

	id := listing.Profiles[0].ID
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/profiles/"+id, nil))
	if rec.Code != http.StatusOK || rec.Body.Len() == 0 {
		t.Fatalf("fetch %s: status %d, %d bytes", id, rec.Code, rec.Body.Len())
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/profiles/nope-1", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown profile status = %d, want 404", rec.Code)
	}
}

func TestNilProfilerIsSafe(t *testing.T) {
	var p *Profiler
	p.CaptureOnce(context.Background())
	if got := p.Profiles(); len(got) != 0 {
		t.Fatal("nil profiler returned profiles")
	}
	if _, ok := p.Get("cpu-1"); ok {
		t.Fatal("nil profiler Get succeeded")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p.Run(ctx) // must return immediately, not panic
}
