package obs

import (
	"fmt"
	"io"
	"runtime"
)

// Version is the build's version string, stamped at link time:
//
//	go build -ldflags "-X crowdwifi/internal/obs.Version=v1.2.3"
//
// It stays "dev" for plain `go build` / `go test` binaries.
var Version = "dev"

// RegisterBuildInfo registers the crowdwifi_build_info gauge: a constant 1
// whose labels identify the running build, so dashboards can join any series
// against the version that produced it (and fleet rollouts are visible as a
// label changeover).
func RegisterBuildInfo(r *Registry) {
	if r == nil {
		return
	}
	r.Gauge("crowdwifi_build_info", "Build metadata; constant 1, labeled with the binary's version and Go toolchain.",
		L("version", Version), L("go_version", runtime.Version())).Set(1)
}

// PrintVersion writes the standard `-version` line for a binary.
func PrintVersion(w io.Writer, binary string) {
	fmt.Fprintf(w, "%s %s %s %s/%s\n", binary, Version, runtime.Version(), runtime.GOOS, runtime.GOARCH)
}
