package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock drives a WindowedHistogram deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestWindow(t *testing.T) (*WindowedHistogram, *fakeClock) {
	t.Helper()
	clk := &fakeClock{t: time.Unix(1000, 0)}
	r := NewRegistry()
	h := r.Histogram("w_test_seconds", "test", []float64{0.1, 1, 10})
	w := NewWindowedHistogram(h, 60*time.Second, 6, clk.now)
	if w == nil {
		t.Fatal("NewWindowedHistogram returned nil for non-nil histogram")
	}
	return w, clk
}

func TestWindowedHistogramExpiry(t *testing.T) {
	w, clk := newTestWindow(t)
	for i := 0; i < 10; i++ {
		w.Observe(0.05)
	}
	if got := w.Count(); got != 10 {
		t.Fatalf("window count = %d, want 10", got)
	}
	// Still inside the window: counts survive rotation across slots.
	clk.advance(30 * time.Second)
	w.Observe(5)
	if got := w.Count(); got != 11 {
		t.Fatalf("window count after 30s = %d, want 11", got)
	}
	// 40s more puts the first burst (age 70s) outside the 60s window but
	// keeps the second observation (age 40s).
	clk.advance(40 * time.Second)
	if got := w.Count(); got != 1 {
		t.Fatalf("window count after expiry = %d, want 1", got)
	}
	if got := w.Sum(); got != 5 {
		t.Fatalf("window sum after expiry = %v, want 5", got)
	}
	// Far future: window fully empty, cumulative core untouched.
	clk.advance(10 * time.Minute)
	if got := w.Count(); got != 0 {
		t.Fatalf("window count after full decay = %d, want 0", got)
	}
	if got := w.Hist().Count(); got != 11 {
		t.Fatalf("cumulative count = %d, want 11 (window must not decay /metrics)", got)
	}
}

func TestWindowedHistogramQuantileTracksRecentTraffic(t *testing.T) {
	w, clk := newTestWindow(t)
	// Old slow traffic...
	for i := 0; i < 100; i++ {
		w.Observe(5)
	}
	// ...ages out; recent traffic is fast.
	clk.advance(2 * time.Minute)
	for i := 0; i < 100; i++ {
		w.Observe(0.05)
	}
	if q := w.Quantile(0.99); q > 0.1 {
		t.Fatalf("window p99 = %v, want ≤ 0.1 (old slow traffic leaked in)", q)
	}
	// Lifetime quantile still remembers the slow half.
	if q := w.Hist().Quantile(0.99); q <= 0.1 {
		t.Fatalf("lifetime p99 = %v, want > 0.1", q)
	}
}

func TestWindowedHistogramEmptyQuantile(t *testing.T) {
	w, _ := newTestWindow(t)
	if q := w.Quantile(0.5); !math.IsNaN(q) {
		t.Fatalf("empty window quantile = %v, want NaN (matches Histogram.Quantile)", q)
	}
	var nilW *WindowedHistogram
	nilW.Observe(1) // must not panic
	if nilW.Count() != 0 || !math.IsNaN(nilW.Quantile(0.5)) {
		t.Fatal("nil WindowedHistogram must read as empty")
	}
}

func TestRegistryWindowedHistogramUpgrade(t *testing.T) {
	r := NewRegistry()
	plain := r.Histogram("upgrade_seconds", "test", nil)
	plain.Observe(0.2)
	w := r.WindowedHistogram("upgrade_seconds", "test", nil, time.Minute, 6)
	if w.Hist() != plain {
		t.Fatal("upgrade must preserve the cumulative core")
	}
	if got := w.Hist().Count(); got != 1 {
		t.Fatalf("pre-upgrade observation lost: count = %d", got)
	}
	// Same name again returns the same windowed instance.
	if again := r.WindowedHistogram("upgrade_seconds", "test", nil, time.Minute, 6); again != w {
		t.Fatal("re-registration must return the existing windowed series")
	}
	// And Histogram() on a windowed series hands back the shared core.
	if r.Histogram("upgrade_seconds", "test", nil) != plain {
		t.Fatal("Histogram on a windowed series must return its cumulative core")
	}
}

func TestWindowedHistogramExposition(t *testing.T) {
	r := NewRegistry()
	w := r.WindowedHistogram("expo_seconds", "Windowed exposition.", []float64{1}, time.Minute, 6)
	w.Observe(0.5)
	w.Observe(2)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		`expo_seconds_bucket{le="1"} 1`,
		`expo_seconds_bucket{le="+Inf"} 2`,
		`expo_seconds_count 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestWindowedHistogramConcurrency(t *testing.T) {
	w, clk := newTestWindow(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				w.Observe(float64(i%3) + 0.05)
				if i%100 == 0 {
					clk.advance(time.Millisecond)
					w.Quantile(0.99)
				}
			}
		}(g)
	}
	wg.Wait()
	if got := w.Hist().Count(); got != 8000 {
		t.Fatalf("cumulative count = %d, want 8000", got)
	}
}
