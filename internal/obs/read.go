package obs

import (
	"math"
	"strings"
)

// ParseLabels decodes a rendered label string — the `k="v",k2="v2"` form
// labelString produces and the exposition format carries between braces —
// into a key→value map. Escaped `\\`, `\"`, and `\n` sequences inside values
// are unescaped. Malformed input returns nil; an empty string returns an
// empty map (the unlabeled series).
func ParseLabels(s string) map[string]string {
	out := map[string]string{}
	i := 0
	for i < len(s) {
		eq := strings.IndexByte(s[i:], '=')
		if eq < 0 {
			return nil
		}
		key := s[i : i+eq]
		i += eq + 1
		if key == "" || i >= len(s) || s[i] != '"' {
			return nil
		}
		i++ // opening quote
		var sb strings.Builder
		closed := false
		for i < len(s) {
			c := s[i]
			if c == '\\' && i+1 < len(s) {
				switch s[i+1] {
				case '\\':
					sb.WriteByte('\\')
				case '"':
					sb.WriteByte('"')
				case 'n':
					sb.WriteByte('\n')
				default:
					sb.WriteByte(s[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				closed = true
				i++
				break
			}
			sb.WriteByte(c)
			i++
		}
		if !closed {
			return nil
		}
		out[key] = sb.String()
		if i < len(s) {
			if s[i] != ',' {
				return nil
			}
			i++
		}
	}
	return out
}

// SumCounters sums every counter series in the named family whose label set
// is accepted by match (a nil match accepts all series). An unknown family
// or a non-counter family returns 0. This is the registry's programmatic
// read path: SLO sources consume RED counters through it without scraping
// their own process.
func (r *Registry) SumCounters(name string, match func(labels map[string]string) bool) float64 {
	if r == nil {
		return 0
	}
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil || f.typ != counterType {
		return 0
	}
	var sum float64
	f.mu.Lock()
	defer f.mu.Unlock()
	for k, c := range f.children {
		cnt, ok := c.(*Counter)
		if !ok {
			continue
		}
		if match != nil && !match(ParseLabels(k)) {
			continue
		}
		sum += float64(cnt.Value())
	}
	return sum
}

// SumHistogramBuckets sums, over every histogram series in the named family
// whose label set is accepted by match (nil accepts all), the cumulative
// observations with value ≤ bound and the total observation count. bound
// selects every bucket whose upper bound is ≤ bound; math.Inf(1) selects all.
// Windowed series contribute their cumulative core, so the ratio le/total is
// a lifetime "fraction under threshold" suitable for latency SLOs.
func (r *Registry) SumHistogramBuckets(name string, match func(labels map[string]string) bool, bound float64) (le, total uint64) {
	if r == nil {
		return 0, 0
	}
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil || f.typ != histogramType {
		return 0, 0
	}
	for k, h := range f.histogramChildren() {
		if match != nil && !match(ParseLabels(k)) {
			continue
		}
		for i, ub := range h.upper {
			if ub <= bound || math.IsInf(bound, 1) {
				le += h.counts[i].Load()
			}
		}
		if math.IsInf(bound, 1) {
			le += h.counts[len(h.upper)].Load()
		}
		total += h.Count()
	}
	return le, total
}
