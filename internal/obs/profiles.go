package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"
)

// Profiler defaults: a 5 s CPU capture every 2 minutes plus a heap snapshot
// costs well under 1% steady-state overhead, cheap enough to leave on.
const (
	DefaultProfileInterval = 2 * time.Minute
	DefaultCPUDuration     = 5 * time.Second
	DefaultProfileKeep     = 16
)

// ProfileInfo describes one retained snapshot.
type ProfileInfo struct {
	ID    string    `json:"id"`   // "{kind}-{seq}", the retrieval key
	Kind  string    `json:"kind"` // "cpu" or "heap"
	Taken time.Time `json:"taken"`
	Bytes int       `json:"bytes"`
}

type profileSnap struct {
	info ProfileInfo
	data []byte
}

// Profiler is the continuous-profiling captor: a background loop takes
// periodic CPU and heap pprof snapshots into bounded per-kind rings served
// at /debug/profiles. Snapshots are the binary pprof format `go tool pprof`
// reads directly.
type Profiler struct {
	interval time.Duration
	cpuDur   time.Duration
	keep     int
	log      *Logger

	mu   sync.Mutex
	seq  uint64
	cpu  []profileSnap
	heap []profileSnap
}

// ProfilerConfig configures a Profiler; zero values select the defaults.
type ProfilerConfig struct {
	// Interval is the pause between capture rounds.
	Interval time.Duration
	// CPUDuration is how long each CPU profile records.
	CPUDuration time.Duration
	// Keep bounds how many snapshots of each kind are retained.
	Keep int
	// Logger receives capture failures (optional).
	Logger *Logger
}

// NewProfiler builds a captor; call Run to start it.
func NewProfiler(cfg ProfilerConfig) *Profiler {
	p := &Profiler{
		interval: cfg.Interval,
		cpuDur:   cfg.CPUDuration,
		keep:     cfg.Keep,
		log:      cfg.Logger,
	}
	if p.interval <= 0 {
		p.interval = DefaultProfileInterval
	}
	if p.cpuDur <= 0 {
		p.cpuDur = DefaultCPUDuration
	}
	if p.cpuDur > p.interval {
		p.cpuDur = p.interval
	}
	if p.keep <= 0 {
		p.keep = DefaultProfileKeep
	}
	return p
}

// Run captures one round per interval until ctx is canceled. Only one CPU
// profile can record per process at a time; a capture that loses that race
// (e.g. against an interactive /debug/pprof/profile request) is skipped and
// retried next round.
func (p *Profiler) Run(ctx context.Context) {
	if p == nil {
		return
	}
	t := time.NewTicker(p.interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			p.CaptureOnce(ctx)
		}
	}
}

// CaptureOnce takes one CPU and one heap snapshot immediately (the CPU
// capture blocks for CPUDuration). Exposed for tests and for boot-time
// captures.
func (p *Profiler) CaptureOnce(ctx context.Context) {
	if p == nil {
		return
	}
	if err := p.captureCPU(ctx); err != nil && p.log != nil {
		p.log.Warn("cpu profile capture failed", "err", err)
	}
	if err := p.captureHeap(); err != nil && p.log != nil {
		p.log.Warn("heap profile capture failed", "err", err)
	}
}

func (p *Profiler) captureCPU(ctx context.Context) error {
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		return err // another CPU profile is in flight; retry next round
	}
	select {
	case <-ctx.Done():
	case <-time.After(p.cpuDur):
	}
	pprof.StopCPUProfile()
	p.retain("cpu", buf.Bytes())
	return nil
}

func (p *Profiler) captureHeap() error {
	prof := pprof.Lookup("heap")
	if prof == nil {
		return fmt.Errorf("heap profile unavailable")
	}
	var buf bytes.Buffer
	if err := prof.WriteTo(&buf, 0); err != nil {
		return err
	}
	p.retain("heap", buf.Bytes())
	return nil
}

func (p *Profiler) retain(kind string, data []byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.seq++
	snap := profileSnap{
		info: ProfileInfo{
			ID:    fmt.Sprintf("%s-%d", kind, p.seq),
			Kind:  kind,
			Taken: time.Now(),
			Bytes: len(data),
		},
		data: data,
	}
	ring := &p.cpu
	if kind == "heap" {
		ring = &p.heap
	}
	*ring = append(*ring, snap)
	if len(*ring) > p.keep {
		*ring = (*ring)[len(*ring)-p.keep:]
	}
}

// Profiles lists every retained snapshot, newest first.
func (p *Profiler) Profiles() []ProfileInfo {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]ProfileInfo, 0, len(p.cpu)+len(p.heap))
	for _, s := range p.cpu {
		out = append(out, s.info)
	}
	for _, s := range p.heap {
		out = append(out, s.info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Taken.After(out[j].Taken) })
	return out
}

// Get returns one retained snapshot's raw pprof bytes by id.
func (p *Profiler) Get(id string) ([]byte, bool) {
	if p == nil {
		return nil, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, ring := range [][]profileSnap{p.cpu, p.heap} {
		for _, s := range ring {
			if s.info.ID == id {
				return s.data, true
			}
		}
	}
	return nil, false
}

// Handler serves the snapshot listing at the mount path and raw snapshots
// at {mount}/{id} (GET only).
func (p *Profiler) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		path := strings.TrimSuffix(r.URL.Path, "/")
		id := ""
		if i := strings.LastIndexByte(path, '/'); i >= 0 {
			if tail := path[i+1:]; tail != "profiles" {
				id = tail
			}
		}
		if id == "" {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(struct {
				Profiles []ProfileInfo `json:"profiles"`
			}{Profiles: p.Profiles()})
			return
		}
		data, ok := p.Get(id)
		if !ok {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			w.WriteHeader(http.StatusNotFound)
			_ = json.NewEncoder(w).Encode(map[string]string{"error": "profile not found", "id": id})
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Disposition", `attachment; filename="`+id+`.pb.gz"`)
		_, _ = w.Write(data)
	})
}

// MountProfiles registers the profiler's endpoints on mux.
func MountProfiles(mux *http.ServeMux, p *Profiler) {
	h := p.Handler()
	mux.Handle("/debug/profiles", h)
	mux.Handle("/debug/profiles/", h)
}
