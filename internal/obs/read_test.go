package obs

import (
	"math"
	"testing"
)

func TestParseLabels(t *testing.T) {
	cases := []struct {
		in   string
		want map[string]string
	}{
		{``, map[string]string{}},
		{`route="/v1/reports"`, map[string]string{"route": "/v1/reports"}},
		{`code="201",route="/v1/reports"`, map[string]string{"code": "201", "route": "/v1/reports"}},
		{`k="a\"b",q="c\\d",n="e\nf"`, map[string]string{"k": `a"b`, "q": `c\d`, "n": "e\nf"}},
	}
	for _, tc := range cases {
		got := ParseLabels(tc.in)
		if got == nil {
			t.Fatalf("ParseLabels(%q) = nil", tc.in)
		}
		if len(got) != len(tc.want) {
			t.Fatalf("ParseLabels(%q) = %v, want %v", tc.in, got, tc.want)
		}
		for k, v := range tc.want {
			if got[k] != v {
				t.Errorf("ParseLabels(%q)[%s] = %q, want %q", tc.in, k, got[k], v)
			}
		}
	}
	// A trailing comma is valid exposition syntax ({a="b",}), so it is NOT in
	// the malformed set.
	for _, bad := range []string{`route=`, `route="x`, `="y"`, `a="b"c="d"`} {
		if got := ParseLabels(bad); got != nil {
			t.Errorf("ParseLabels(%q) = %v, want nil", bad, got)
		}
	}
}

func TestParseLabelsRoundTrip(t *testing.T) {
	labels := []Label{L("route", "/v1/lookup"), L("weird", `quo"te\back`)}
	s := labelString(labels)
	got := ParseLabels(s)
	if got["route"] != "/v1/lookup" || got["weird"] != `quo"te\back` {
		t.Fatalf("round trip of %q = %v", s, got)
	}
}

func TestSumCounters(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("hits_total", "", L("route", "/a"), L("code", "200")).Add(5)
	reg.Counter("hits_total", "", L("route", "/a"), L("code", "500")).Add(2)
	reg.Counter("hits_total", "", L("route", "/b"), L("code", "200")).Add(11)
	reg.Gauge("not_a_counter", "").Set(99)

	if got := reg.SumCounters("hits_total", nil); got != 18 {
		t.Fatalf("SumCounters(nil match) = %v, want 18", got)
	}
	routeA := func(ls map[string]string) bool { return ls["route"] == "/a" }
	if got := reg.SumCounters("hits_total", routeA); got != 7 {
		t.Fatalf("SumCounters(route=/a) = %v, want 7", got)
	}
	if got := reg.SumCounters("not_a_counter", nil); got != 0 {
		t.Fatalf("SumCounters over a gauge = %v, want 0", got)
	}
	if got := reg.SumCounters("missing", nil); got != 0 {
		t.Fatalf("SumCounters over a missing family = %v, want 0", got)
	}
	var nilReg *Registry
	if got := nilReg.SumCounters("hits_total", nil); got != 0 {
		t.Fatalf("nil registry SumCounters = %v", got)
	}
}

func TestSumHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	h1 := reg.Histogram("lat", "", []float64{0.1, 0.5, 1}, L("route", "/a"))
	h2 := reg.Histogram("lat", "", []float64{0.1, 0.5, 1}, L("route", "/b"))
	for _, v := range []float64{0.05, 0.4, 0.6} {
		h1.Observe(v)
	}
	for _, v := range []float64{0.5, 3} {
		h2.Observe(v)
	}

	// Observations at or under 0.5: 0.05, 0.4 (h1) and 0.5 (h2) = 3 of 5.
	le, total := reg.SumHistogramBuckets("lat", nil, 0.5)
	if le != 3 || total != 5 {
		t.Fatalf("SumHistogramBuckets(0.5) = %d/%d, want 3/5", le, total)
	}
	le, total = reg.SumHistogramBuckets("lat", nil, math.Inf(1))
	if le != 5 || total != 5 {
		t.Fatalf("SumHistogramBuckets(+Inf) = %d/%d, want 5/5", le, total)
	}
	routeB := func(ls map[string]string) bool { return ls["route"] == "/b" }
	le, total = reg.SumHistogramBuckets("lat", routeB, 0.5)
	if le != 1 || total != 2 {
		t.Fatalf("SumHistogramBuckets(/b, 0.5) = %d/%d, want 1/2", le, total)
	}
}
