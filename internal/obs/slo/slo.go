// Package slo evaluates service-level objectives from the metrics registry.
//
// An Objective declares a target (e.g. 99.9% of uploads succeed) and a
// Source returning cumulative (good, total) event counts. The Engine samples
// every source on a fixed cadence into a bounded ring, derives windowed
// error rates by differencing ring samples, and converts them to burn rates:
// burn = errorRate / (1 - target), so burn 1.0 consumes the error budget
// exactly at the rate that exhausts it at the window's end.
//
// Alerting follows the multi-window multi-burn-rate recipe: an alert names a
// short and a long window plus a threshold, and fires only when the burn
// rate exceeds the threshold in BOTH windows — the short window makes the
// alert reset quickly once the problem stops, the long window keeps a brief
// blip from paging. The defaults are the conventional fast page
// (5m/1h at 14.4× — budget gone in 2 days) and slow ticket (6h/3d at 1×).
//
// The Status is served at /debug/slo as JSON, and the same numbers are
// exported as crowdwifi_slo_* gauges for scrapers.
package slo

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"sync"
	"time"

	"crowdwifi/internal/obs"
)

// Objective is one declarative SLO: Source returns cumulative good and total
// event counts (monotone non-decreasing); Target is the good/total fraction
// the service promises, e.g. 0.999.
type Objective struct {
	Name        string
	Description string
	Target      float64
	Source      func() (good, total float64)
}

// BurnAlert is one multi-window burn-rate alert: it fires while the burn
// rate is at or above Threshold in both the Short and the Long window.
type BurnAlert struct {
	Name      string
	Short     time.Duration
	Long      time.Duration
	Threshold float64
}

// DefaultAlerts are the conventional fast/slow multi-burn-rate pair.
func DefaultAlerts() []BurnAlert {
	return []BurnAlert{
		{Name: "fast", Short: 5 * time.Minute, Long: time.Hour, Threshold: 14.4},
		{Name: "slow", Short: 6 * time.Hour, Long: 72 * time.Hour, Threshold: 1.0},
	}
}

// DefaultWindows are the horizons reported per objective — the union of the
// default alerts' windows.
var DefaultWindows = []time.Duration{5 * time.Minute, time.Hour, 6 * time.Hour, 72 * time.Hour}

// DefaultInterval is the sampling cadence. 10 s resolves the 5 m fast window
// into 30 points while a 3 d retention stays under 26k samples per objective.
const DefaultInterval = 10 * time.Second

type sample struct {
	t           time.Time
	good, total float64
}

// Config configures an Engine. Zero values select the defaults; Registry is
// optional (nil skips the crowdwifi_slo_* gauges).
type Config struct {
	Objectives []Objective
	Alerts     []BurnAlert
	Windows    []time.Duration
	Interval   time.Duration
	Registry   *obs.Registry
	Now        func() time.Time
}

// Engine samples objectives and serves their evaluated status.
type Engine struct {
	mu         sync.Mutex
	objectives []Objective
	alerts     []BurnAlert
	windows    []time.Duration
	interval   time.Duration
	retention  time.Duration
	now        func() time.Time
	rings      [][]sample // parallel to objectives

	reg *obs.Registry
}

// New builds an Engine and takes an initial sample so the first Status is
// never empty.
func New(cfg Config) *Engine {
	e := &Engine{
		objectives: cfg.Objectives,
		alerts:     cfg.Alerts,
		windows:    cfg.Windows,
		interval:   cfg.Interval,
		now:        cfg.Now,
		reg:        cfg.Registry,
	}
	if len(e.alerts) == 0 {
		e.alerts = DefaultAlerts()
	}
	if len(e.windows) == 0 {
		e.windows = append([]time.Duration(nil), DefaultWindows...)
	}
	if e.interval <= 0 {
		e.interval = DefaultInterval
	}
	for _, w := range e.windows {
		if w > e.retention {
			e.retention = w
		}
	}
	for _, a := range e.alerts {
		if a.Long > e.retention {
			e.retention = a.Long
		}
		if a.Short > e.retention {
			e.retention = a.Short
		}
	}
	e.retention += e.interval
	if e.now == nil {
		e.now = time.Now
	}
	e.rings = make([][]sample, len(e.objectives))
	e.Sample()
	// Scrapes see live burn rates even between ticks.
	if e.reg != nil {
		e.reg.OnScrape(e.Sample)
	}
	return e
}

// Sample reads every objective's source once and appends to its ring,
// pruning samples older than the retention horizon. Safe for concurrent use.
func (e *Engine) Sample() {
	if e == nil {
		return
	}
	e.mu.Lock()
	now := e.now()
	for i, obj := range e.objectives {
		good, total := obj.Source()
		ring := append(e.rings[i], sample{t: now, good: good, total: total})
		cutoff := now.Add(-e.retention)
		trim := 0
		// Keep one sample at or before the cutoff as the differencing base.
		for trim < len(ring)-1 && !ring[trim+1].t.After(cutoff) {
			trim++
		}
		e.rings[i] = ring[trim:]
	}
	st := e.statusLocked()
	e.mu.Unlock()
	e.export(st)
}

// Run samples on the engine's interval until ctx is canceled.
func (e *Engine) Run(ctx context.Context) {
	if e == nil {
		return
	}
	t := time.NewTicker(e.interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			e.Sample()
		}
	}
}

// WindowStatus is one objective's evaluation over one horizon.
type WindowStatus struct {
	Window    string  `json:"window"`
	Good      float64 `json:"good"`
	Total     float64 `json:"total"`
	ErrorRate float64 `json:"errorRate"`
	BurnRate  float64 `json:"burnRate"`
}

// AlertStatus is one burn-rate alert's evaluation.
type AlertStatus struct {
	Name        string  `json:"name"`
	ShortWindow string  `json:"shortWindow"`
	LongWindow  string  `json:"longWindow"`
	Threshold   float64 `json:"threshold"`
	ShortBurn   float64 `json:"shortBurn"`
	LongBurn    float64 `json:"longBurn"`
	Firing      bool    `json:"firing"`
}

// ObjectiveStatus is one objective's full evaluation.
type ObjectiveStatus struct {
	Name        string         `json:"name"`
	Description string         `json:"description,omitempty"`
	Target      float64        `json:"target"`
	Good        float64        `json:"good"`
	Total       float64        `json:"total"`
	Windows     []WindowStatus `json:"windows"`
	Alerts      []AlertStatus  `json:"alerts"`
	Healthy     bool           `json:"healthy"`
}

// Status is the /debug/slo document.
type Status struct {
	GeneratedAt time.Time         `json:"generatedAt"`
	Objectives  []ObjectiveStatus `json:"objectives"`
}

// Status evaluates every objective against the current ring contents.
func (e *Engine) Status() Status {
	if e == nil {
		return Status{}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.statusLocked()
}

func (e *Engine) statusLocked() Status {
	now := e.now()
	st := Status{GeneratedAt: now}
	for i, obj := range e.objectives {
		ring := e.rings[i]
		os := ObjectiveStatus{
			Name:        obj.Name,
			Description: obj.Description,
			Target:      obj.Target,
			Healthy:     true,
		}
		if n := len(ring); n > 0 {
			os.Good, os.Total = ring[n-1].good, ring[n-1].total
		}
		for _, w := range e.windows {
			good, total, errRate, burn := burnOver(ring, now, w, obj.Target)
			os.Windows = append(os.Windows, WindowStatus{
				Window: w.String(), Good: good, Total: total,
				ErrorRate: errRate, BurnRate: burn,
			})
		}
		for _, a := range e.alerts {
			_, _, _, shortBurn := burnOver(ring, now, a.Short, obj.Target)
			_, _, _, longBurn := burnOver(ring, now, a.Long, obj.Target)
			firing := shortBurn >= a.Threshold && longBurn >= a.Threshold
			os.Alerts = append(os.Alerts, AlertStatus{
				Name:        a.Name,
				ShortWindow: a.Short.String(),
				LongWindow:  a.Long.String(),
				Threshold:   a.Threshold,
				ShortBurn:   shortBurn,
				LongBurn:    longBurn,
				Firing:      firing,
			})
			if firing {
				os.Healthy = false
			}
		}
		st.Objectives = append(st.Objectives, os)
	}
	return st
}

// burnOver differences the ring across the window ending now. A window
// longer than the ring's span falls back to the oldest sample (burn over
// the observed lifetime); an empty or single-sample ring, or a window with
// no events, reports zero burn rather than NaN.
func burnOver(ring []sample, now time.Time, window time.Duration, target float64) (good, total, errRate, burn float64) {
	if len(ring) == 0 {
		return 0, 0, 0, 0
	}
	cur := ring[len(ring)-1]
	cutoff := now.Add(-window)
	base := ring[0]
	for _, s := range ring {
		if s.t.After(cutoff) {
			break
		}
		base = s
	}
	good = cur.good - base.good
	total = cur.total - base.total
	if total <= 0 {
		return good, total, 0, 0
	}
	errRate = 1 - good/total
	if errRate < 0 {
		errRate = 0
	}
	budget := 1 - target
	if budget <= 0 {
		if errRate > 0 {
			return good, total, errRate, math.Inf(1)
		}
		return good, total, errRate, 0
	}
	return good, total, errRate, errRate / budget
}

// export refreshes the crowdwifi_slo_* gauges from an evaluated status.
func (e *Engine) export(st Status) {
	if e.reg == nil {
		return
	}
	for _, os := range st.Objectives {
		e.reg.Gauge("crowdwifi_slo_target",
			"Declared objective target (good/total fraction).",
			obs.L("slo", os.Name)).Set(os.Target)
		for _, w := range os.Windows {
			e.reg.Gauge("crowdwifi_slo_burn_rate",
				"Error-budget burn rate over the window (1.0 = budget exactly consumed at window end).",
				obs.L("slo", os.Name), obs.L("window", w.Window)).Set(w.BurnRate)
			e.reg.Gauge("crowdwifi_slo_error_rate",
				"Error rate over the window.",
				obs.L("slo", os.Name), obs.L("window", w.Window)).Set(w.ErrorRate)
		}
		for _, a := range os.Alerts {
			v := 0.0
			if a.Firing {
				v = 1
			}
			e.reg.Gauge("crowdwifi_slo_alert_firing",
				"1 while the multi-window burn-rate alert fires.",
				obs.L("slo", os.Name), obs.L("alert", a.Name)).Set(v)
		}
	}
}

// Handler serves the evaluated status as JSON (GET only).
func (e *Engine) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(e.Status())
	})
}

// CounterRatio builds a Source over one counter family: total sums every
// series accepted by match, good the subset also accepted by isGood (both
// receive the series' parsed labels). The conventional availability shape:
// match selects the route, isGood rejects 5xx codes.
func CounterRatio(reg *obs.Registry, family string, match, isGood func(labels map[string]string) bool) func() (float64, float64) {
	return func() (float64, float64) {
		total := reg.SumCounters(family, match)
		good := reg.SumCounters(family, func(ls map[string]string) bool {
			if match != nil && !match(ls) {
				return false
			}
			return isGood == nil || isGood(ls)
		})
		return good, total
	}
}

// LatencyUnder builds a Source over one histogram family: good counts
// observations at or under threshold (which should be one of the family's
// bucket bounds for an exact answer), total counts all observations, summed
// across every series accepted by match.
func LatencyUnder(reg *obs.Registry, family string, match func(labels map[string]string) bool, threshold float64) func() (float64, float64) {
	return func() (float64, float64) {
		le, total := reg.SumHistogramBuckets(family, match, threshold)
		return float64(le), float64(total)
	}
}
