package slo

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"crowdwifi/internal/obs"
)

// fakeClock drives the engine deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newClock() *fakeClock                   { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }
func src(good, total *float64) func() (float64, float64) {
	return func() (float64, float64) { return *good, *total }
}

func TestEngineBurnRateMath(t *testing.T) {
	clock := newClock()
	var good, total float64
	e := New(Config{
		Objectives: []Objective{{Name: "avail", Target: 0.999, Source: src(&good, &total)}},
		Now:        clock.now,
	})

	// 1% error rate against a 0.1% budget = burn 10.
	clock.advance(5 * time.Minute)
	good, total = 990, 1000
	e.Sample()
	st := e.Status()
	if len(st.Objectives) != 1 {
		t.Fatalf("objectives = %d", len(st.Objectives))
	}
	o := st.Objectives[0]
	if o.Good != 990 || o.Total != 1000 {
		t.Fatalf("good/total = %v/%v", o.Good, o.Total)
	}
	w5m := o.Windows[0]
	if w5m.Window != "5m0s" {
		t.Fatalf("first window = %s, want 5m0s", w5m.Window)
	}
	if got := w5m.ErrorRate; math.Abs(got-0.01) > 1e-9 {
		t.Fatalf("5m error rate = %v, want 0.01", got)
	}
	if got := w5m.BurnRate; math.Abs(got-10) > 1e-6 {
		t.Fatalf("5m burn rate = %v, want 10", got)
	}
	// Burn 10 < fast threshold 14.4, but well over the slow threshold 1.0 —
	// and the short run means every window falls back to the same lifetime
	// delta, so the slow alert fires and marks the objective unhealthy.
	fast, slow := o.Alerts[0], o.Alerts[1]
	if fast.Firing {
		t.Fatalf("fast alert firing at burn 10 (threshold %v)", fast.Threshold)
	}
	if !slow.Firing {
		t.Fatalf("slow alert not firing at sustained burn 10 (threshold %v)", slow.Threshold)
	}
	if o.Healthy {
		t.Fatal("objective healthy while the slow alert fires")
	}
}

func TestEngineAlertFiresOnFastBurn(t *testing.T) {
	clock := newClock()
	var good, total float64
	e := New(Config{
		Objectives: []Objective{{Name: "avail", Target: 0.999, Source: src(&good, &total)}},
		Now:        clock.now,
	})
	// 2% error rate = burn 20, over the fast threshold. The ring spans only
	// 5 minutes, so the 1h long window falls back to the oldest sample and
	// sees the same burn — both windows agree and the fast alert fires.
	clock.advance(5 * time.Minute)
	good, total = 980, 1000
	e.Sample()
	o := e.Status().Objectives[0]
	fast := o.Alerts[0]
	if !fast.Firing {
		t.Fatalf("fast alert not firing at burn %v/%v (threshold %v)",
			fast.ShortBurn, fast.LongBurn, fast.Threshold)
	}
	if o.Healthy {
		t.Fatal("objective healthy while an alert fires")
	}
}

func TestEngineRecoveryStopsFastAlert(t *testing.T) {
	clock := newClock()
	var good, total float64
	e := New(Config{
		Objectives: []Objective{{Name: "avail", Target: 0.999, Source: src(&good, &total)}},
		Now:        clock.now,
	})
	clock.advance(time.Minute)
	good, total = 980, 1000 // burn 20: firing
	e.Sample()
	if !e.Status().Objectives[0].Alerts[0].Firing {
		t.Fatal("precondition: fast alert should fire")
	}
	// One clean hour: the 5m short window sees only good traffic, so the
	// fast alert stops even though lifetime errors remain.
	for i := 0; i < 12; i++ {
		clock.advance(5 * time.Minute)
		good += 1000
		total += 1000
		e.Sample()
	}
	o := e.Status().Objectives[0]
	if o.Alerts[0].Firing {
		t.Fatalf("fast alert still firing after recovery: short=%v long=%v",
			o.Alerts[0].ShortBurn, o.Alerts[0].LongBurn)
	}
}

func TestEngineZeroTraffic(t *testing.T) {
	clock := newClock()
	var good, total float64
	e := New(Config{
		Objectives: []Objective{{Name: "avail", Target: 0.999, Source: src(&good, &total)}},
		Now:        clock.now,
	})
	clock.advance(time.Hour)
	e.Sample()
	o := e.Status().Objectives[0]
	for _, w := range o.Windows {
		if w.BurnRate != 0 || w.ErrorRate != 0 {
			t.Fatalf("window %s burn=%v err=%v with zero traffic", w.Window, w.BurnRate, w.ErrorRate)
		}
	}
	if !o.Healthy {
		t.Fatal("zero traffic should be healthy")
	}
}

func TestEngineRingPrunes(t *testing.T) {
	clock := newClock()
	var good, total float64
	e := New(Config{
		Objectives: []Objective{{Name: "avail", Target: 0.999, Source: src(&good, &total)}},
		Windows:    []time.Duration{time.Minute},
		Alerts:     []BurnAlert{{Name: "fast", Short: 30 * time.Second, Long: time.Minute, Threshold: 10}},
		Interval:   time.Second,
		Now:        clock.now,
	})
	for i := 0; i < 1000; i++ {
		clock.advance(time.Second)
		total += 10
		good += 10
		e.Sample()
	}
	e.mu.Lock()
	n := len(e.rings[0])
	e.mu.Unlock()
	// Retention is max(window, long) + interval = 61s: the ring must stay
	// near that bound instead of growing with run length.
	if n > 70 {
		t.Fatalf("ring grew to %d samples; retention not applied", n)
	}
}

func TestEngineExportsGauges(t *testing.T) {
	clock := newClock()
	reg := obs.NewRegistry()
	var good, total float64
	e := New(Config{
		Objectives: []Objective{{Name: "avail", Target: 0.999, Source: src(&good, &total)}},
		Registry:   reg,
		Now:        clock.now,
	})
	clock.advance(5 * time.Minute)
	good, total = 990, 1000
	e.Sample()

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	exp := sb.String()
	for _, want := range []string{
		`crowdwifi_slo_target{slo="avail"} 0.999`,
		`crowdwifi_slo_burn_rate{slo="avail",window="5m0s"}`,
		`crowdwifi_slo_error_rate{slo="avail",window="5m0s"}`,
		`crowdwifi_slo_alert_firing{alert="fast",slo="avail"}`,
	} {
		if !strings.Contains(exp, want) {
			t.Errorf("exposition lacks %q", want)
		}
	}
}

func TestHandlerServesStatusJSON(t *testing.T) {
	clock := newClock()
	var good, total float64 = 99, 100
	e := New(Config{
		Objectives: []Objective{{Name: "avail", Target: 0.9, Source: src(&good, &total)}},
		Now:        clock.now,
	})
	rec := httptest.NewRecorder()
	e.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/slo", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var st Status
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("decode: %v: %s", err, rec.Body.String())
	}
	if len(st.Objectives) != 1 || st.Objectives[0].Name != "avail" {
		t.Fatalf("objectives = %+v", st.Objectives)
	}
	if len(st.Objectives[0].Windows) == 0 || len(st.Objectives[0].Alerts) == 0 {
		t.Fatal("objective missing windows or alerts")
	}

	rec = httptest.NewRecorder()
	e.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/debug/slo", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST status = %d, want 405", rec.Code)
	}
}

func TestCounterRatioAndLatencyUnder(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("req_total", "", obs.L("route", "/v1/reports"), obs.L("code", "201")).Add(90)
	reg.Counter("req_total", "", obs.L("route", "/v1/reports"), obs.L("code", "500")).Add(10)
	reg.Counter("req_total", "", obs.L("route", "/other"), obs.L("code", "200")).Add(1000)

	ratio := CounterRatio(reg, "req_total",
		func(ls map[string]string) bool { return ls["route"] == "/v1/reports" },
		func(ls map[string]string) bool { return ls["code"] == "201" })
	good, total := ratio()
	if good != 90 || total != 100 {
		t.Fatalf("CounterRatio = %v/%v, want 90/100", good, total)
	}

	h := reg.Histogram("lat_seconds", "", []float64{0.1, 0.5, 1}, obs.L("route", "/v1/lookup"))
	for _, v := range []float64{0.05, 0.3, 0.5, 0.9, 2} {
		h.Observe(v)
	}
	under := LatencyUnder(reg, "lat_seconds",
		func(ls map[string]string) bool { return ls["route"] == "/v1/lookup" }, 0.5)
	good, total = under()
	if good != 3 || total != 5 {
		t.Fatalf("LatencyUnder = %v/%v, want 3/5", good, total)
	}
}

func TestNilEngineIsSafe(t *testing.T) {
	var e *Engine
	e.Sample()
	if st := e.Status(); len(st.Objectives) != 0 {
		t.Fatal("nil engine produced objectives")
	}
}
