package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

func checkStatus(t *testing.T, h http.Handler, want int) map[string]string {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	if rec.Code != want {
		t.Fatalf("status %d, want %d", rec.Code, want)
	}
	var body map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("body %q: %v", rec.Body.String(), err)
	}
	return body
}

func TestHealthLifecycle(t *testing.T) {
	h := NewHealth()

	// Fresh: alive but not ready (startup/replay in progress).
	checkStatus(t, h.LiveHandler(), http.StatusOK)
	body := checkStatus(t, h.ReadyHandler(), http.StatusServiceUnavailable)
	if body["reason"] != "starting" {
		t.Fatalf("initial reason %q, want starting", body["reason"])
	}

	h.SetReady()
	checkStatus(t, h.ReadyHandler(), http.StatusOK)
	if ready, _ := h.Ready(); !ready {
		t.Fatal("Ready() false after SetReady")
	}

	// Shutdown snapshot: readiness drops, liveness stays.
	h.SetNotReady("shutdown snapshot")
	checkStatus(t, h.LiveHandler(), http.StatusOK)
	body = checkStatus(t, h.ReadyHandler(), http.StatusServiceUnavailable)
	if body["reason"] != "shutdown snapshot" {
		t.Fatalf("shutdown reason %q", body["reason"])
	}
}

func TestHealthNilSafe(t *testing.T) {
	var h *Health
	h.SetReady()
	h.SetNotReady("x")
	if ready, _ := h.Ready(); ready {
		t.Fatal("nil health reports ready")
	}
}

func TestMountHealth(t *testing.T) {
	h := NewHealth()
	h.SetReady()
	mux := http.NewServeMux()
	MountHealth(mux, h)
	srv := httptest.NewServer(mux)
	defer srv.Close()
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s status %d", path, resp.StatusCode)
		}
	}
}
