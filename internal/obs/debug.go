package obs

import (
	"bytes"
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Mount attaches the observability endpoints to mux: the registry's
// /metrics, an expvar-compatible /debug/vars extended with histogram
// quantile estimates, and the full net/http/pprof suite under /debug/pprof/.
// It is safe to call with a nil registry (the /metrics endpoint then serves
// an empty exposition and /debug/vars omits the quantile block).
func Mount(mux *http.ServeMux, reg *Registry) {
	mux.Handle("/metrics", reg.Handler())
	MountDebug(mux, reg)
}

// MountDebug attaches every Mount endpoint except /metrics: /debug/vars and
// the pprof suite. Processes that serve a non-registry /metrics handler (the
// router's federated exposition) use this to keep the rest of the debug
// surface without a duplicate /metrics registration.
func MountDebug(mux *http.ServeMux, reg *Registry) {
	mux.Handle("/debug/vars", varsHandler(reg))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// varsHandler serves the expvar document with extra keys:
// "crowdwifi_histogram_quantiles" (p50/p95/p99/p999 estimates — rolling-
// window estimates for windowed series), "crowdwifi_histogram_exemplars"
// (per-bucket trace ids resolvable at /debug/traces/{id}), and
// "crowdwifi_process" (CPU seconds and goroutines, so a load generator can
// compute server CPU utilization from two scrapes). Emitted per-registry
// rather than via expvar.Publish, which is process-global and panics on
// re-registration (multiple registries, tests).
func varsHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		fmt.Fprintf(w, "{\n")
		first := true
		emit := func(key string, v any) {
			if !first {
				fmt.Fprintf(w, ",\n")
			}
			first = false
			b, _ := json.Marshal(v)
			fmt.Fprintf(w, "%q: %s", key, b)
		}
		expvar.Do(func(kv expvar.KeyValue) {
			if !first {
				fmt.Fprintf(w, ",\n")
			}
			first = false
			fmt.Fprintf(w, "%q: %s", kv.Key, kv.Value)
		})
		for _, pv := range reg.publishedVars() {
			emit(pv.key, pv.fn())
		}
		if q := reg.Quantiles(); len(q) > 0 {
			emit("crowdwifi_histogram_quantiles", q)
		}
		if ex := reg.Exemplars(); len(ex) > 0 {
			emit("crowdwifi_histogram_exemplars", ex)
		}
		emit("crowdwifi_process", ProcessStats())
		fmt.Fprintf(w, "\n}\n")
	})
}

// ProcStats is the process-level block of /debug/vars.
type ProcStats struct {
	// CPUSeconds is cumulative user+system CPU time, or -1 where
	// /proc/self/stat is unavailable (non-Linux hosts).
	CPUSeconds float64 `json:"cpuSeconds"`
	// Goroutines is the live goroutine count.
	Goroutines int `json:"goroutines"`
}

// ProcessStats samples the process-level stats served under
// "crowdwifi_process".
func ProcessStats() ProcStats {
	return ProcStats{
		CPUSeconds: ProcessCPUSeconds(),
		Goroutines: runtime.NumGoroutine(),
	}
}

// ProcessCPUSeconds returns the process's cumulative user+system CPU time
// read from /proc/self/stat, or -1 when unavailable. Two samples Δt apart
// give CPU utilization as Δcpu/Δt — the measure the load generator records
// for the server under test.
func ProcessCPUSeconds() float64 {
	b, err := os.ReadFile("/proc/self/stat")
	if err != nil {
		return -1
	}
	// Fields after the parenthesized comm (which may itself contain spaces):
	// field 3 is state; utime and stime are fields 14 and 15 (1-based).
	i := bytes.LastIndexByte(b, ')')
	if i < 0 {
		return -1
	}
	fields := strings.Fields(string(b[i+1:]))
	if len(fields) < 13 {
		return -1
	}
	utime, err1 := strconv.ParseFloat(fields[11], 64)
	stime, err2 := strconv.ParseFloat(fields[12], 64)
	if err1 != nil || err2 != nil {
		return -1
	}
	// USER_HZ is 100 on every Linux configuration Go supports.
	return (utime + stime) / 100
}

// NewDebugMux returns a mux with the Mount endpoints, for serving metrics
// and profiles on a dedicated listener next to the main service port.
func NewDebugMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	Mount(mux, reg)
	return mux
}

// RegisterGoRuntime registers process-level gauges (goroutines, heap usage,
// GC cycles) refreshed on every scrape.
func (r *Registry) RegisterGoRuntime() {
	if r == nil {
		return
	}
	goroutines := r.Gauge("go_goroutines", "Number of live goroutines.")
	heapAlloc := r.Gauge("go_memstats_heap_alloc_bytes", "Bytes of allocated heap objects.")
	heapObjects := r.Gauge("go_memstats_heap_objects", "Number of allocated heap objects.")
	totalAlloc := r.Gauge("go_memstats_alloc_bytes_total", "Cumulative bytes allocated for heap objects.")
	gcCycles := r.Gauge("go_gc_cycles_total", "Completed GC cycles.")
	cpuSeconds := r.Gauge("process_cpu_seconds_total", "Cumulative user+system CPU time (-1 where /proc is unavailable).")
	r.OnScrape(func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		goroutines.Set(float64(runtime.NumGoroutine()))
		heapAlloc.Set(float64(ms.HeapAlloc))
		heapObjects.Set(float64(ms.HeapObjects))
		totalAlloc.Set(float64(ms.TotalAlloc))
		gcCycles.Set(float64(ms.NumGC))
		cpuSeconds.Set(ProcessCPUSeconds())
	})
}
