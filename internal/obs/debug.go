package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
)

// Mount attaches the observability endpoints to mux: the registry's
// /metrics, an expvar-compatible /debug/vars extended with histogram
// quantile estimates, and the full net/http/pprof suite under /debug/pprof/.
// It is safe to call with a nil registry (the /metrics endpoint then serves
// an empty exposition and /debug/vars omits the quantile block).
func Mount(mux *http.ServeMux, reg *Registry) {
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/debug/vars", varsHandler(reg))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// varsHandler serves the expvar document with one extra key,
// "crowdwifi_histogram_quantiles", holding p50/p95/p99 estimates for the
// registry's histograms. Emitted per-registry rather than via
// expvar.Publish, which is process-global and panics on re-registration
// (multiple registries, tests).
func varsHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		fmt.Fprintf(w, "{\n")
		first := true
		expvar.Do(func(kv expvar.KeyValue) {
			if !first {
				fmt.Fprintf(w, ",\n")
			}
			first = false
			fmt.Fprintf(w, "%q: %s", kv.Key, kv.Value)
		})
		if q := reg.Quantiles(); len(q) > 0 {
			if !first {
				fmt.Fprintf(w, ",\n")
			}
			b, _ := json.Marshal(q)
			fmt.Fprintf(w, "%q: %s", "crowdwifi_histogram_quantiles", b)
		}
		fmt.Fprintf(w, "\n}\n")
	})
}

// NewDebugMux returns a mux with the Mount endpoints, for serving metrics
// and profiles on a dedicated listener next to the main service port.
func NewDebugMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	Mount(mux, reg)
	return mux
}

// RegisterGoRuntime registers process-level gauges (goroutines, heap usage,
// GC cycles) refreshed on every scrape.
func (r *Registry) RegisterGoRuntime() {
	if r == nil {
		return
	}
	goroutines := r.Gauge("go_goroutines", "Number of live goroutines.")
	heapAlloc := r.Gauge("go_memstats_heap_alloc_bytes", "Bytes of allocated heap objects.")
	heapObjects := r.Gauge("go_memstats_heap_objects", "Number of allocated heap objects.")
	totalAlloc := r.Gauge("go_memstats_alloc_bytes_total", "Cumulative bytes allocated for heap objects.")
	gcCycles := r.Gauge("go_gc_cycles_total", "Completed GC cycles.")
	r.OnScrape(func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		goroutines.Set(float64(runtime.NumGoroutine()))
		heapAlloc.Set(float64(ms.HeapAlloc))
		heapObjects.Set(float64(ms.HeapObjects))
		totalAlloc.Set(float64(ms.TotalAlloc))
		gcCycles.Set(float64(ms.NumGC))
	})
}
