// Package obs is CrowdWiFi's zero-dependency observability layer: a
// concurrent metrics registry (counters, gauges, fixed-bucket histograms)
// with Prometheus text exposition, a leveled key=value logger, defer-friendly
// timing helpers, and an HTTP mux bundle that serves /metrics next to expvar
// and net/http/pprof.
//
// Every constructor and instrument method is nil-safe: a nil *Registry hands
// out nil instruments and a nil instrument is a no-op, so instrumented code
// paths need no conditionals and pay nothing when observability is off.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one key="value" pair attached to a metric series.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

type metricType int

const (
	counterType metricType = iota
	gaugeType
	histogramType
)

func (t metricType) String() string {
	switch t {
	case counterType:
		return "counter"
	case gaugeType:
		return "gauge"
	case histogramType:
		return "histogram"
	default:
		return "unknown"
	}
}

// DefBuckets are the default histogram buckets (seconds): the conventional
// Prometheus latency ladder extended to 30 s so the seconds-scale tail a
// loaded server produces (retry storms, shed-and-retry loops, drain waits)
// still resolves instead of clipping into +Inf at 10 s.
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10, 30}

// LinearBuckets returns count buckets starting at start, each width apart.
func LinearBuckets(start, width float64, count int) []float64 {
	out := make([]float64, count)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExponentialBuckets returns count buckets starting at start, each factor
// times the previous.
func ExponentialBuckets(start, factor float64, count int) []float64 {
	out := make([]float64, count)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// family groups all series sharing one metric name.
type family struct {
	name, help string
	typ        metricType
	buckets    []float64 // histogram upper bounds, ascending, no +Inf

	mu       sync.Mutex
	children map[string]any // rendered label string → instrument
}

// Registry is a concurrent metrics registry. Instruments are created once
// per (name, label set) and cached; hot-path updates are single atomic
// operations with no registry locking.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	hooks    []func()
	vars     []publishedVar
}

// publishedVar is one caller-supplied /debug/vars key (see PublishVar).
type publishedVar struct {
	key string
	fn  func() any
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// OnScrape registers fn to run at the start of every exposition (use it to
// refresh sampled gauges, e.g. runtime stats).
func (r *Registry) OnScrape(fn func()) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.hooks = append(r.hooks, fn)
	r.mu.Unlock()
}

// PublishVar adds a key to this registry's /debug/vars document, evaluated
// (and JSON-encoded) on every request. Unlike expvar.Publish it is
// per-registry, so tests and multi-registry processes cannot collide.
func (r *Registry) PublishVar(key string, fn func() any) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.vars = append(r.vars, publishedVar{key: key, fn: fn})
	r.mu.Unlock()
}

// publishedVars snapshots the registered /debug/vars extensions.
func (r *Registry) publishedVars() []publishedVar {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]publishedVar(nil), r.vars...)
}

func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func (r *Registry) family(name, help string, typ metricType, buckets []float64) *family {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, buckets: buckets, children: map[string]any{}}
		r.families[name] = f
		return f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.typ, typ))
	}
	return f
}

func (f *family) child(labels []Label, mk func() any) any {
	key := labelString(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.children[key]
	if !ok {
		c = mk()
		f.children[key] = c
	}
	return c
}

// Counter returns the counter for (name, labels), creating it on first use.
// Returns nil on a nil registry.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	f := r.family(name, help, counterType, nil)
	return f.child(labels, func() any { return &Counter{} }).(*Counter)
}

// Gauge returns the gauge for (name, labels), creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	f := r.family(name, help, gaugeType, nil)
	return f.child(labels, func() any { return &Gauge{} }).(*Gauge)
}

// Histogram returns the histogram for (name, labels), creating it on first
// use. buckets are ascending upper bounds (an implicit +Inf bucket is always
// added); nil selects DefBuckets. The first registration of a name fixes the
// bucket layout for every series in the family.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %q buckets not strictly ascending", name))
		}
	}
	f := r.family(name, help, histogramType, buckets)
	switch h := f.child(labels, func() any { return newHistogram(f.buckets) }).(type) {
	case *Histogram:
		return h
	case *WindowedHistogram:
		// The series was first registered with a rolling window; hand out its
		// cumulative core so both call styles observe the same data.
		return h.hist
	default:
		panic(fmt.Sprintf("obs: metric %q is not a histogram", name))
	}
}

// WindowedHistogram returns the rolling-window histogram for (name, labels),
// creating it on first use with the given total window width split into
// slots ring slots (≤ 0 select DefaultWindow / DefaultWindowSlots). The
// cumulative core is exposed on /metrics exactly like a plain histogram; the
// windowed view feeds Quantiles (and therefore /debug/vars), so quantile
// reads describe recent traffic. Registering a name previously created via
// Histogram upgrades that series in place, preserving its counts.
func (r *Registry) WindowedHistogram(name, help string, buckets []float64, window time.Duration, slots int, labels ...Label) *WindowedHistogram {
	if r == nil {
		return nil
	}
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %q buckets not strictly ascending", name))
		}
	}
	f := r.family(name, help, histogramType, buckets)
	key := labelString(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	switch c := f.children[key].(type) {
	case *WindowedHistogram:
		return c
	case *Histogram:
		w := NewWindowedHistogram(c, window, slots, nil)
		f.children[key] = w
		return w
	default:
		w := NewWindowedHistogram(newHistogram(f.buckets), window, slots, nil)
		f.children[key] = w
		return w
	}
}

// Counter is a monotonically increasing integer counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add increments the gauge by d (negative d decrements).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets; per-bucket counts are
// independent atomics so concurrent Observe calls never contend on a lock.
type Histogram struct {
	upper     []float64
	counts    []atomic.Uint64 // len(upper)+1; the last slot is the +Inf bucket
	exemplars []atomic.Pointer[Exemplar]
	n         atomic.Uint64
	sum       atomicFloat
}

func newHistogram(buckets []float64) *Histogram {
	return &Histogram{
		upper:     buckets,
		counts:    make([]atomic.Uint64, len(buckets)+1),
		exemplars: make([]atomic.Pointer[Exemplar], len(buckets)+1),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.ObserveWithExemplar(v, "")
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.load()
}

// Quantile estimates the q-quantile (q in [0, 1]) of the observed
// distribution by linear interpolation within the bucket the target rank
// falls in — the same estimate Prometheus' histogram_quantile computes.
// Values landing in the +Inf bucket clamp to the last finite bound. NaN is
// returned when the histogram is empty or q is out of range.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || q < 0 || q > 1 {
		return math.NaN()
	}
	total := h.n.Load()
	if total == 0 {
		return math.NaN()
	}
	rank := q * float64(total)
	var cum float64
	for i, ub := range h.upper {
		c := float64(h.counts[i].Load())
		if cum+c >= rank {
			lo := 0.0
			if i > 0 {
				lo = h.upper[i-1]
			}
			if c == 0 {
				return ub
			}
			return lo + (ub-lo)*(rank-cum)/c
		}
		cum += c
	}
	// Target rank is in the +Inf bucket: the upper bound is unknowable, so
	// report the largest finite bound (what histogram_quantile does too).
	if len(h.upper) == 0 {
		return math.NaN()
	}
	return h.upper[len(h.upper)-1]
}

// histogramFamilies snapshots the registry's histogram families.
func (r *Registry) histogramFamilies() []*family {
	r.mu.RLock()
	defer r.mu.RUnlock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		if f.typ == histogramType {
			fams = append(fams, f)
		}
	}
	return fams
}

// histogramChildren snapshots a family's series as cumulative histograms
// (windowed series contribute their cumulative core).
func (f *family) histogramChildren() map[string]*Histogram {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]*Histogram, len(f.children))
	for k, c := range f.children {
		switch h := c.(type) {
		case *Histogram:
			out[k] = h
		case *WindowedHistogram:
			out[k] = h.hist
		}
	}
	return out
}

// quantileSpecs are the estimates reported on /debug/vars. p999 resolves the
// seconds-scale tail the load generator hunts for.
var quantileSpecs = []struct {
	label string
	q     float64
}{{"p50", 0.50}, {"p95", 0.95}, {"p99", 0.99}, {"p999", 0.999}}

// Quantiles returns p50/p95/p99/p999 estimates for every registered
// histogram series, keyed "name{labels}" → quantile label → estimate. Plain
// histograms report lifetime estimates; windowed histograms report their
// rolling window (the current tail, not the lifetime one). Each block also
// carries a "count" key — the number of samples behind the estimates — so a
// p99 over 3 observations is distinguishable from one over 30k. Empty series
// are skipped. This feeds /debug/vars so quick latency checks don't require
// a Prometheus stack.
func (r *Registry) Quantiles() map[string]map[string]float64 {
	if r == nil {
		return nil
	}
	out := map[string]map[string]float64{}
	for _, f := range r.histogramFamilies() {
		f.mu.Lock()
		children := make(map[string]any, len(f.children))
		for k, c := range f.children {
			children[k] = c
		}
		f.mu.Unlock()
		for k, c := range children {
			quantile := func(float64) float64 { return math.NaN() }
			var count uint64
			switch h := c.(type) {
			case *Histogram:
				if h.Count() == 0 {
					continue
				}
				quantile = h.Quantile
				count = h.Count()
			case *WindowedHistogram:
				if h.Count() == 0 {
					continue
				}
				quantile = h.Quantile
				count = h.Count()
			default:
				continue
			}
			series := f.name
			if k != "" {
				series += "{" + k + "}"
			}
			est := make(map[string]float64, len(quantileSpecs)+1)
			for _, spec := range quantileSpecs {
				if v := quantile(spec.q); !math.IsNaN(v) {
					est[spec.label] = v
				}
			}
			est["count"] = float64(count)
			out[series] = est
		}
	}
	return out
}

type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, `\"`+"\n") {
		return v
	}
	var sb strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(c)
		}
	}
	return sb.String()
}

func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var sb strings.Builder
	for i, l := range ls {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Key)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(l.Value))
		sb.WriteByte('"')
	}
	return sb.String()
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

func writeSeries(w io.Writer, name, labels, value string) error {
	if labels == "" {
		_, err := fmt.Fprintf(w, "%s %s\n", name, value)
		return err
	}
	_, err := fmt.Fprintf(w, "%s{%s} %s\n", name, labels, value)
	return err
}

// writeHistogramSeries emits one histogram series in exposition order:
// cumulative buckets, sum, count.
func writeHistogramSeries(w io.Writer, name, k string, c *Histogram) error {
	var cum uint64
	for bi, ub := range c.upper {
		cum += c.counts[bi].Load()
		le := joinLabels(k, `le="`+formatFloat(ub)+`"`)
		if err := writeSeries(w, name+"_bucket", le, strconv.FormatUint(cum, 10)); err != nil {
			return err
		}
	}
	cum += c.counts[len(c.upper)].Load()
	le := joinLabels(k, `le="+Inf"`)
	if err := writeSeries(w, name+"_bucket", le, strconv.FormatUint(cum, 10)); err != nil {
		return err
	}
	if err := writeSeries(w, name+"_sum", k, formatFloat(c.Sum())); err != nil {
		return err
	}
	return writeSeries(w, name+"_count", k, strconv.FormatUint(c.Count(), 10))
}

// joinLabels appends extra to a rendered label string.
func joinLabels(base, extra string) string {
	if base == "" {
		return extra
	}
	return base + "," + extra
}

// WritePrometheus writes the registry contents in the Prometheus text
// exposition format (version 0.0.4). Families and series are emitted in
// sorted order so output is deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	hooks := append([]func(){}, r.hooks...)
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	r.mu.RUnlock()
	for _, fn := range hooks {
		fn()
	}
	sort.Strings(names)

	for _, name := range names {
		r.mu.RLock()
		f := r.families[name]
		r.mu.RUnlock()

		f.mu.Lock()
		keys := make([]string, 0, len(f.children))
		for k := range f.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		children := make([]any, len(keys))
		for i, k := range keys {
			children[i] = f.children[k]
		}
		f.mu.Unlock()

		if f.help != "" {
			help := strings.ReplaceAll(strings.ReplaceAll(f.help, `\`, `\\`), "\n", `\n`)
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for i, k := range keys {
			switch c := children[i].(type) {
			case *Counter:
				if err := writeSeries(w, f.name, k, strconv.FormatUint(c.Value(), 10)); err != nil {
					return err
				}
			case *Gauge:
				if err := writeSeries(w, f.name, k, formatFloat(c.Value())); err != nil {
					return err
				}
			case *Histogram:
				if err := writeHistogramSeries(w, f.name, k, c); err != nil {
					return err
				}
			case *WindowedHistogram:
				// The cumulative core is the Prometheus-visible series; the
				// rolling window only affects Quantiles.
				if err := writeHistogramSeries(w, f.name, k, c.hist); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Handler serves the registry in Prometheus text format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
