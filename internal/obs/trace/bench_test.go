package trace

import (
	"context"
	"testing"
)

// BenchmarkSpanStartEnd measures the per-span overhead on the hot path. The
// unsampled case is the one that matters for production head-sampling: it
// must stay under a couple hundred nanoseconds so instrumentation can be left
// on unconditionally.
func BenchmarkSpanStartEnd(b *testing.B) {
	b.Run("unsampled", func(b *testing.B) {
		tr := NewTracer(Config{SampleRate: 0})
		ctx := WithTracer(context.Background(), tr)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, s := Start(ctx, "bench.op")
			s.End()
		}
	})
	b.Run("sampled", func(b *testing.B) {
		tr := NewTracer(Config{SampleRate: 1, Capacity: 64})
		ctx := WithTracer(context.Background(), tr)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, s := Start(ctx, "bench.op")
			s.End()
		}
	})
	b.Run("sampled-child", func(b *testing.B) {
		tr := NewTracer(Config{SampleRate: 1, Capacity: 64})
		ctx := WithTracer(context.Background(), tr)
		ctx, root := Start(ctx, "bench.root")
		defer root.End()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, s := StartChild(ctx, "bench.child")
			s.End()
		}
	})
}
