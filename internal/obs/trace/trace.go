// Package trace is CrowdWiFi's zero-dependency distributed-tracing layer: a
// span API with 128-bit trace IDs, W3C traceparent propagation over HTTP, a
// lock-cheap per-process ring-buffer trace store, and head + tail sampling
// (head: a probability gate on new root traces; tail: error traces and the
// slowest N per endpoint survive ring eviction).
//
// The API is nil-safe end to end: a nil *Span accepts every method as a
// no-op and a context without a tracer starts nothing, so instrumented code
// paths need no conditionals and an unsampled span costs a few nanoseconds.
//
// Spans from one trace may finish in separate bursts (a client retry that
// drains from the outbox minutes later, a server handling each retry
// attempt): each burst commits a fragment to the store, and the store merges
// fragments by trace ID, so /debug/traces/{id} always shows the whole story.
package trace

import (
	"context"
	"encoding/hex"
	"math"
	"math/rand/v2"
	"sync"
	"time"
)

// TraceID is a 128-bit trace identifier (W3C trace-id).
type TraceID [16]byte

// String returns the 32-char lowercase hex form.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// IsZero reports whether the id is the invalid all-zero value.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// SpanID is a 64-bit span identifier (W3C parent-id).
type SpanID [8]byte

// String returns the 16-char lowercase hex form.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// IsZero reports whether the id is the invalid all-zero value.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// Attr is one key/value pair attached to a span.
type Attr struct {
	Key   string `json:"key"`
	Value any    `json:"value"`
}

// Event is a timestamped annotation on a span.
type Event struct {
	Time time.Time `json:"time"`
	Msg  string    `json:"msg"`
}

// SpanData is the immutable record of a finished span.
type SpanData struct {
	TraceID    string    `json:"traceId"`
	SpanID     string    `json:"spanId"`
	ParentID   string    `json:"parentId,omitempty"`
	Remote     bool      `json:"remoteParent,omitempty"`
	Name       string    `json:"name"`
	Start      time.Time `json:"start"`
	DurationNS int64     `json:"durationNs"`
	Error      string    `json:"error,omitempty"`
	Attrs      []Attr    `json:"attrs,omitempty"`
	Events     []Event   `json:"events,omitempty"`
}

// Config configures a Tracer.
type Config struct {
	// SampleRate is the head-sampling probability for new root traces in
	// [0, 1]: 1 records every trace, 0 records none. Remote continuations
	// (a valid sampled traceparent) follow the upstream decision instead.
	SampleRate float64
	// Capacity bounds the recent-trace ring (≤ 0 selects 256).
	Capacity int
	// ErrorCapacity bounds the error-trace retention ring (≤ 0 selects
	// Capacity/4, at least 16).
	ErrorCapacity int
	// SlowPerEndpoint is how many slowest traces to retain per root span
	// name (≤ 0 selects 4).
	SlowPerEndpoint int
	// Now overrides the clock (tests).
	Now func() time.Time
}

// Tracer mints spans and owns the trace store. All methods are safe for
// concurrent use; a nil *Tracer starts nothing.
type Tracer struct {
	sampleAll bool
	threshold uint64 // sample when rand64 < threshold
	now       func() time.Time
	store     *Store

	mu     sync.Mutex
	active map[TraceID]*traceBuf
}

// NewTracer returns a tracer with the given configuration.
func NewTracer(cfg Config) *Tracer {
	t := &Tracer{
		now:    cfg.Now,
		store:  newStore(cfg.Capacity, cfg.ErrorCapacity, cfg.SlowPerEndpoint),
		active: map[TraceID]*traceBuf{},
	}
	if t.now == nil {
		t.now = time.Now
	}
	switch {
	case cfg.SampleRate >= 1:
		t.sampleAll = true
	case cfg.SampleRate > 0:
		t.threshold = uint64(cfg.SampleRate * math.MaxUint64)
	}
	return t
}

// Store exposes the tracer's trace store (for mounting /debug/traces).
func (t *Tracer) Store() *Store {
	if t == nil {
		return nil
	}
	return t.store
}

func (t *Tracer) sample() bool {
	if t.sampleAll {
		return true
	}
	if t.threshold == 0 {
		return false
	}
	return rand.Uint64() < t.threshold
}

func (t *Tracer) newTraceID() TraceID {
	var id TraceID
	for id.IsZero() {
		putUint64(id[:8], rand.Uint64())
		putUint64(id[8:], rand.Uint64())
	}
	return id
}

func (t *Tracer) newSpanID() SpanID {
	var id SpanID
	for id.IsZero() {
		putUint64(id[:], rand.Uint64())
	}
	return id
}

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (56 - 8*i))
	}
}

// traceBuf accumulates one process-local burst of spans for a trace. When
// the last open span referencing it ends, the burst commits to the store as
// a fragment; the store merges fragments by trace ID.
type traceBuf struct {
	mu        sync.Mutex
	refs      int
	committed bool
	err       bool
	spans     []SpanData
}

// tryRef claims a reference unless the buffer already committed.
func (b *traceBuf) tryRef() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.committed {
		return false
	}
	b.refs++
	return true
}

// finish records a finished span and releases its reference; done reports
// that this was the last reference and the buffer is now sealed.
func (b *traceBuf) finish(d SpanData, isErr bool) (spans []SpanData, anyErr, done bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.spans = append(b.spans, d)
	if isErr {
		b.err = true
	}
	b.refs--
	if b.refs > 0 || b.committed {
		return nil, false, false
	}
	b.committed = true
	return b.spans, b.err, true
}

// joinBuf returns the live buffer for a trace id, creating one (with one
// reference claimed) when none is open.
func (t *Tracer) joinBuf(id TraceID) *traceBuf {
	t.mu.Lock()
	defer t.mu.Unlock()
	if b, ok := t.active[id]; ok && b.tryRef() {
		return b
	}
	b := &traceBuf{refs: 1}
	t.active[id] = b
	return b
}

func (t *Tracer) commit(id TraceID, b *traceBuf, spans []SpanData, err bool) {
	t.mu.Lock()
	if t.active[id] == b {
		delete(t.active, id)
	}
	t.mu.Unlock()
	t.store.add(id.String(), spans, err)
}

// Span is one in-flight operation. A nil *Span is a recorded-nothing no-op,
// so callers never branch on sampling.
type Span struct {
	tracer   *Tracer
	buf      *traceBuf
	traceID  TraceID
	spanID   SpanID
	parentID SpanID
	remote   bool
	name     string
	start    time.Time

	mu     sync.Mutex
	attrs  []Attr
	events []Event
	errMsg string
	ended  bool
}

type ctxKey int

const (
	spanKey ctxKey = iota
	tracerKey
)

// WithTracer returns a context that starts new root spans on t.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey, t)
}

// FromContext returns the current span (nil when none).
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey).(*Span)
	return s
}

// TracerFromContext returns the tracer reachable from ctx: the current
// span's tracer, or the one installed by WithTracer.
func TracerFromContext(ctx context.Context) *Tracer {
	if s := FromContext(ctx); s != nil {
		return s.tracer
	}
	t, _ := ctx.Value(tracerKey).(*Tracer)
	return t
}

// IDs returns the current trace and span ids in hex for log correlation.
func IDs(ctx context.Context) (traceID, spanID string, ok bool) {
	s := FromContext(ctx)
	if s == nil {
		return "", "", false
	}
	return s.traceID.String(), s.spanID.String(), true
}

// Start begins a span: a child of the context's current span when one is
// present, otherwise a new (head-sampled) root on the context's tracer. A
// context with neither returns (ctx, nil) untouched.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	if parent := FromContext(ctx); parent != nil {
		return parent.child(ctx, name)
	}
	t, _ := ctx.Value(tracerKey).(*Tracer)
	if t == nil {
		return ctx, nil
	}
	return t.startRoot(ctx, name)
}

// StartChild begins a span only when the context already carries one; it
// never creates a new root. Use it for interior steps (an fsync, a retry
// attempt) that are noise outside a traced request.
func StartChild(ctx context.Context, name string) (context.Context, *Span) {
	if parent := FromContext(ctx); parent != nil {
		return parent.child(ctx, name)
	}
	return ctx, nil
}

func (t *Tracer) startRoot(ctx context.Context, name string) (context.Context, *Span) {
	if !t.sample() {
		return ctx, nil
	}
	tid := t.newTraceID()
	s := &Span{
		tracer:  t,
		buf:     t.joinBuf(tid),
		traceID: tid,
		spanID:  t.newSpanID(),
		name:    name,
		start:   t.now(),
	}
	return context.WithValue(ctx, spanKey, s), s
}

// StartRemote continues a trace whose parent span lives in another process
// (or another burst of this one): the upstream sampling decision is honored,
// so sampled=false records nothing.
func (t *Tracer) StartRemote(ctx context.Context, name string, tid TraceID, parent SpanID, sampled bool) (context.Context, *Span) {
	if t == nil || !sampled || tid.IsZero() {
		return ctx, nil
	}
	s := &Span{
		tracer:   t,
		buf:      t.joinBuf(tid),
		traceID:  tid,
		spanID:   t.newSpanID(),
		parentID: parent,
		remote:   true,
		name:     name,
		start:    t.now(),
	}
	return context.WithValue(ctx, spanKey, s), s
}

func (p *Span) child(ctx context.Context, name string) (context.Context, *Span) {
	buf := p.buf
	if !buf.tryRef() {
		// The parent's burst already committed (e.g. an outbox drain running
		// after the original upload span closed): open a fresh fragment under
		// the same trace id and let the store merge them.
		buf = p.tracer.joinBuf(p.traceID)
	}
	s := &Span{
		tracer:   p.tracer,
		buf:      buf,
		traceID:  p.traceID,
		spanID:   p.tracer.newSpanID(),
		parentID: p.spanID,
		name:     name,
		start:    p.tracer.now(),
	}
	return context.WithValue(ctx, spanKey, s), s
}

// TraceID returns the span's trace id in hex ("" on nil).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.traceID.String()
}

// SpanID returns the span's id in hex ("" on nil).
func (s *Span) SpanID() string {
	if s == nil {
		return ""
	}
	return s.spanID.String()
}

// SetAttr attaches a key/value attribute.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// AddEvent records a timestamped annotation.
func (s *Span) AddEvent(msg string) {
	if s == nil {
		return
	}
	now := s.tracer.now()
	s.mu.Lock()
	s.events = append(s.events, Event{Time: now, Msg: msg})
	s.mu.Unlock()
}

// SetError marks the span (and therefore its trace) as failed. A nil err is
// ignored, so `span.SetError(err)` needs no conditional at call sites.
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.mu.Lock()
	s.errMsg = err.Error()
	s.mu.Unlock()
}

// End finishes the span and, when it is the last open span of its local
// burst, commits the burst to the trace store. End is idempotent.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := s.tracer.now()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	dur := end.Sub(s.start)
	if dur <= 0 {
		// Coarse clocks can report zero elapsed time for sub-tick work; a
		// recorded span always took *some* time.
		dur = time.Nanosecond
	}
	data := SpanData{
		TraceID:    s.traceID.String(),
		SpanID:     s.spanID.String(),
		Name:       s.name,
		Start:      s.start,
		DurationNS: int64(dur),
		Error:      s.errMsg,
		Attrs:      s.attrs,
		Events:     s.events,
		Remote:     s.remote,
	}
	if !s.parentID.IsZero() {
		data.ParentID = s.parentID.String()
	}
	isErr := s.errMsg != ""
	s.mu.Unlock()
	if spans, anyErr, done := s.buf.finish(data, isErr); done {
		s.tracer.commit(s.traceID, s.buf, spans, anyErr)
	}
}
