package trace

import (
	"context"
	"net/http"
	"strings"
	"testing"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tr := newTestTracer(t, 1)
	ctx := WithTracer(context.Background(), tr)
	ctx, s := Start(ctx, "client.POST /report")
	defer s.End()

	h := http.Header{}
	Inject(ctx, h)
	v := h.Get(Header)
	want := "00-" + s.TraceID() + "-" + s.SpanID() + "-01"
	if v != want {
		t.Fatalf("injected %q, want %q", v, want)
	}

	tid, parent, sampled, err := Extract(h)
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	if tid.String() != s.TraceID() || parent.String() != s.SpanID() || !sampled {
		t.Fatalf("extracted %s/%s/%v, want %s/%s/true", tid, parent, sampled, s.TraceID(), s.SpanID())
	}

	// Server side continues the trace with the client span as remote parent.
	_, srv := tr.StartServer(context.Background(), "server POST /report", h)
	if srv == nil {
		t.Fatal("StartServer dropped a sampled continuation")
	}
	defer srv.End()
	if srv.TraceID() != s.TraceID() {
		t.Fatalf("server trace %s != client trace %s", srv.TraceID(), s.TraceID())
	}
}

func TestParseTraceparentGolden(t *testing.T) {
	tid, parent, sampled, err := ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	if err != nil {
		t.Fatalf("golden W3C example rejected: %v", err)
	}
	if tid.String() != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("trace-id %s", tid)
	}
	if parent.String() != "00f067aa0ba902b7" {
		t.Fatalf("parent-id %s", parent)
	}
	if !sampled {
		t.Fatal("flags 01 not sampled")
	}

	// Unsampled flag.
	_, _, sampled, err = ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00")
	if err != nil || sampled {
		t.Fatalf("flags 00: sampled=%v err=%v", sampled, err)
	}

	// Future version with extra fields is accepted (per spec).
	if _, _, _, err := ParseTraceparent("01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra"); err != nil {
		t.Fatalf("future-version value rejected: %v", err)
	}
}

func TestParseTraceparentMalformed(t *testing.T) {
	cases := []struct{ name, v string }{
		{"empty", ""},
		{"garbage", "not-a-traceparent"},
		{"too few fields", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7"},
		{"version ff", "ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"},
		{"version 00 extra field", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-x"},
		{"short trace-id", "00-4bf92f3577b34da6-00f067aa0ba902b7-01"},
		{"long trace-id", "00-4bf92f3577b34da6a3ce929d0e0e473600-00f067aa0ba902b7-01"},
		{"zero trace-id", "00-00000000000000000000000000000000-00f067aa0ba902b7-01"},
		{"non-hex trace-id", "00-4bf92f3577b34da6a3ce929d0e0e473g-00f067aa0ba902b7-01"},
		{"uppercase trace-id", "00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01"},
		{"short parent-id", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa-01"},
		{"zero parent-id", "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01"},
		{"non-hex parent-id", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902bx-01"},
		{"bad flags", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-0x"},
		{"short flags", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-1"},
		{"bad version", "0x-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"},
	}
	for _, tc := range cases {
		if _, _, _, err := ParseTraceparent(tc.v); err == nil {
			t.Errorf("%s: %q accepted, want error", tc.name, tc.v)
		}
	}
}

// TestStartServerFallsBackOnMalformedHeader: a bad traceparent must not kill
// tracing — the server starts a fresh root instead.
func TestStartServerFallsBackOnMalformedHeader(t *testing.T) {
	tr := newTestTracer(t, 1)
	for _, v := range []string{"", "bogus", "ff-aaaa-bbbb-01"} {
		h := http.Header{}
		if v != "" {
			h.Set(Header, v)
		}
		_, s := tr.StartServer(context.Background(), "server GET /x", h)
		if s == nil {
			t.Fatalf("header %q: no fallback root span", v)
		}
		if strings.Contains(v, "-") {
			// The malformed id must not leak into the fresh trace.
			if strings.Contains(v, s.TraceID()) {
				t.Fatalf("fallback reused malformed trace id")
			}
		}
		s.End()
	}
}

// TestStartServerHonorsUnsampledBit: upstream said "don't record" — obey.
func TestStartServerHonorsUnsampledBit(t *testing.T) {
	tr := newTestTracer(t, 1)
	h := http.Header{}
	h.Set(Header, "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00")
	if _, s := tr.StartServer(context.Background(), "server POST /report", h); s != nil {
		t.Fatal("unsampled continuation recorded a span")
	}
}

func TestResumeFallsBackToStart(t *testing.T) {
	tr := newTestTracer(t, 1)
	ctx := WithTracer(context.Background(), tr)
	_, s := Resume(ctx, "client.drain /report", "malformed")
	if s == nil {
		t.Fatal("Resume with bad traceparent did not fall back to a fresh root")
	}
	s.End()
	// Without a tracer Resume is a no-op.
	if _, s := Resume(context.Background(), "x", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"); s != nil {
		t.Fatal("Resume without tracer returned a span")
	}
}
