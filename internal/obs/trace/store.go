package trace

import (
	"sort"
	"sync"
	"time"
)

// Store retention defaults.
const (
	DefaultCapacity        = 256
	DefaultSlowPerEndpoint = 4
)

// TraceSummary is the list-view form of one retained trace.
type TraceSummary struct {
	ID         string    `json:"id"`
	Root       string    `json:"root"`
	Start      time.Time `json:"start"`
	DurationNS int64     `json:"durationNs"`
	Spans      int       `json:"spans"`
	Error      bool      `json:"error,omitempty"`
}

// TraceData is one fully-assembled trace: every retained span, ordered by
// start time.
type TraceData struct {
	ID         string     `json:"id"`
	Root       string     `json:"root"`
	Start      time.Time  `json:"start"`
	DurationNS int64      `json:"durationNs"`
	Error      bool       `json:"error,omitempty"`
	Spans      []SpanData `json:"spans"`
}

func (t *TraceData) summary() TraceSummary {
	return TraceSummary{
		ID:         t.ID,
		Root:       t.Root,
		Start:      t.Start,
		DurationNS: t.DurationNS,
		Spans:      len(t.Spans),
		Error:      t.Error,
	}
}

// Store is the per-process trace retention buffer. Committed trace fragments
// merge by trace ID; retention is three overlapping views:
//
//   - recent: a FIFO ring of the last Capacity traces;
//   - errors: a FIFO ring of traces containing a failed span;
//   - slow: the slowest SlowPerEndpoint traces per root span name.
//
// A trace evicted from the recent ring survives while the error ring or a
// slow list still references it — tail-based sampling: the interesting
// traces outlive the merely recent ones.
type Store struct {
	mu        sync.Mutex
	capRecent int
	capErr    int
	slowN     int
	traces    map[string]*TraceData
	recent    []string            // FIFO, oldest first
	errs      []string            // FIFO, oldest first
	slow      map[string][]string // root name → ids, slowest first
}

func newStore(capacity, errCapacity, slowN int) *Store {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	if errCapacity <= 0 {
		errCapacity = capacity / 4
		if errCapacity < 16 {
			errCapacity = 16
		}
	}
	if slowN <= 0 {
		slowN = DefaultSlowPerEndpoint
	}
	return &Store{
		capRecent: capacity,
		capErr:    errCapacity,
		slowN:     slowN,
		traces:    map[string]*TraceData{},
		slow:      map[string][]string{},
	}
}

// NewStore returns a standalone store (tests; tracers build their own).
func NewStore(capacity, errCapacity, slowN int) *Store {
	return newStore(capacity, errCapacity, slowN)
}

func contains(ids []string, id string) bool {
	for _, v := range ids {
		if v == id {
			return true
		}
	}
	return false
}

func remove(ids []string, id string) []string {
	for i, v := range ids {
		if v == id {
			return append(ids[:i], ids[i+1:]...)
		}
	}
	return ids
}

// inSlow reports whether any slow list references id.
func (s *Store) inSlow(id string) bool {
	for _, ids := range s.slow {
		if contains(ids, id) {
			return true
		}
	}
	return false
}

// add merges one committed fragment into the store.
func (s *Store) add(id string, spans []SpanData, hasErr bool) {
	if s == nil || len(spans) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	tr, ok := s.traces[id]
	if !ok {
		tr = &TraceData{ID: id}
		s.traces[id] = tr
		s.recent = append(s.recent, id)
	} else if tr.Root != "" {
		// Re-place in the slow view after the merge changes the duration.
		s.slow[tr.Root] = remove(s.slow[tr.Root], id)
	}
	tr.Spans = append(tr.Spans, spans...)
	tr.Error = tr.Error || hasErr
	s.refreshLocked(tr)

	if tr.Error && !contains(s.errs, id) {
		s.errs = append(s.errs, id)
	}
	s.placeSlowLocked(tr)

	for len(s.recent) > s.capRecent {
		old := s.recent[0]
		s.recent = s.recent[1:]
		if !contains(s.errs, old) && !s.inSlow(old) {
			delete(s.traces, old)
		}
	}
	for len(s.errs) > s.capErr {
		old := s.errs[0]
		s.errs = s.errs[1:]
		if !contains(s.recent, old) && !s.inSlow(old) {
			delete(s.traces, old)
		}
	}
}

// refreshLocked recomputes a trace's derived fields (root, start, duration)
// and sorts its spans by start time.
func (s *Store) refreshLocked(tr *TraceData) {
	sort.SliceStable(tr.Spans, func(i, j int) bool { return tr.Spans[i].Start.Before(tr.Spans[j].Start) })
	tr.Start = tr.Spans[0].Start
	var end time.Time
	root := -1
	for i := range tr.Spans {
		if e := tr.Spans[i].Start.Add(time.Duration(tr.Spans[i].DurationNS)); e.After(end) {
			end = e
		}
		if root < 0 && (tr.Spans[i].ParentID == "" || tr.Spans[i].Remote) {
			root = i
		}
	}
	if root < 0 {
		root = 0
	}
	tr.Root = tr.Spans[root].Name
	tr.DurationNS = int64(end.Sub(tr.Start))
}

// placeSlowLocked inserts a trace into its endpoint's slowest-N list,
// evicting whatever no longer qualifies.
func (s *Store) placeSlowLocked(tr *TraceData) {
	ids := s.slow[tr.Root]
	ids = append(ids, tr.ID)
	sort.SliceStable(ids, func(i, j int) bool {
		a, b := s.traces[ids[i]], s.traces[ids[j]]
		if a == nil || b == nil {
			return b == nil
		}
		return a.DurationNS > b.DurationNS
	})
	for len(ids) > s.slowN {
		old := ids[len(ids)-1]
		ids = ids[:len(ids)-1]
		if old != tr.ID && !contains(s.recent, old) && !contains(s.errs, old) && !contains(ids, old) {
			delete(s.traces, old)
		}
	}
	s.slow[tr.Root] = ids
}

// Len reports how many traces are retained across all views.
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.traces)
}

func (s *Store) summariesLocked(ids []string, newestFirst bool) []TraceSummary {
	out := make([]TraceSummary, 0, len(ids))
	for _, id := range ids {
		if tr, ok := s.traces[id]; ok {
			out = append(out, tr.summary())
		}
	}
	if newestFirst {
		for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
			out[i], out[j] = out[j], out[i]
		}
	}
	return out
}

// Recent returns the retained recent traces, newest first.
func (s *Store) Recent() []TraceSummary {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.summariesLocked(s.recent, true)
}

// Errors returns the retained error traces, newest first.
func (s *Store) Errors() []TraceSummary {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.summariesLocked(s.errs, true)
}

// Slowest returns the slowest retained traces per root span name.
func (s *Store) Slowest() map[string][]TraceSummary {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string][]TraceSummary, len(s.slow))
	for name, ids := range s.slow {
		out[name] = s.summariesLocked(ids, false)
	}
	return out
}

// Merge assembles per-process trace fragments into one logical trace: spans
// are pooled, deduplicated by span id, re-sorted by start time, the root and
// duration recomputed, and the error flag ORed across fragments. It is the
// cross-process counterpart of the store's own fragment merge — the router
// uses it to join its hop with the owning shard's server-side fragment. The
// trace id is the first fragment's non-empty ID. ok is false when no
// fragment carried any spans.
func Merge(fragments ...TraceData) (TraceData, bool) {
	id := ""
	for _, fr := range fragments {
		if fr.ID != "" {
			id = fr.ID
			break
		}
	}
	if id == "" {
		return TraceData{}, false
	}
	scratch := newStore(1, 1, 1)
	seen := map[string]bool{}
	for _, fr := range fragments {
		spans := make([]SpanData, 0, len(fr.Spans))
		for _, sp := range fr.Spans {
			if sp.SpanID != "" && seen[sp.SpanID] {
				continue
			}
			seen[sp.SpanID] = true
			spans = append(spans, sp)
		}
		scratch.add(id, spans, fr.Error)
	}
	return scratch.Get(id)
}

// Get returns a copy of one retained trace by hex id.
func (s *Store) Get(id string) (TraceData, bool) {
	if s == nil {
		return TraceData{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	tr, ok := s.traces[id]
	if !ok {
		return TraceData{}, false
	}
	cp := *tr
	cp.Spans = append([]SpanData(nil), tr.Spans...)
	return cp, true
}
