package trace

import (
	"encoding/json"
	"net/http"
	"strings"
)

// index is the /debug/traces JSON document.
type index struct {
	Recent  []TraceSummary            `json:"recent"`
	Slowest map[string][]TraceSummary `json:"slowest"`
	Errors  []TraceSummary            `json:"errors"`
}

// Handler serves the store as JSON: the bare path lists recent, slowest-per-
// endpoint, and error traces; "<path>/{id}" returns one assembled trace.
func (s *Store) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.WriteHeader(http.StatusMethodNotAllowed)
			return
		}
		id := ""
		if i := strings.LastIndexByte(strings.TrimSuffix(r.URL.Path, "/"), '/'); i >= 0 {
			tail := strings.TrimSuffix(r.URL.Path, "/")[i+1:]
			if tail != "traces" {
				id = tail
			}
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if id == "" {
			_ = enc.Encode(index{Recent: s.Recent(), Slowest: s.Slowest(), Errors: s.Errors()})
			return
		}
		tr, ok := s.Get(id)
		if !ok {
			w.WriteHeader(http.StatusNotFound)
			_ = enc.Encode(map[string]string{"error": "trace not found", "id": id})
			return
		}
		_ = enc.Encode(tr)
	})
}

// Mount attaches the trace endpoints to mux: /debug/traces (recent +
// slowest + errors) and /debug/traces/{id} (one assembled trace).
func Mount(mux *http.ServeMux, s *Store) {
	if s == nil {
		return
	}
	h := s.Handler()
	mux.Handle("/debug/traces", h)
	mux.Handle("/debug/traces/", h)
}
