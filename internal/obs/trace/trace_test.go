package trace

import (
	"context"
	"errors"
	"testing"
)

func newTestTracer(t *testing.T, rate float64) *Tracer {
	t.Helper()
	return NewTracer(Config{SampleRate: rate})
}

func TestSpanTreeCommitsToStore(t *testing.T) {
	tr := newTestTracer(t, 1)
	ctx := WithTracer(context.Background(), tr)

	ctx, root := Start(ctx, "client.upload /report")
	if root == nil {
		t.Fatal("sampled root span is nil")
	}
	root.SetAttr("idempotency_key", "k-1")

	cctx, child := Start(ctx, "retry.attempt")
	if child == nil {
		t.Fatal("child span is nil")
	}
	if child.TraceID() != root.TraceID() {
		t.Fatalf("child trace id %s != root %s", child.TraceID(), root.TraceID())
	}
	if child.SpanID() == root.SpanID() {
		t.Fatal("child reused parent span id")
	}
	child.AddEvent("first attempt")
	child.SetError(errors.New("connection refused"))
	child.End()

	_, gchild := StartChild(cctx, "never")
	if gchild != nil {
		// cctx still carries child; StartChild under an ended parent must
		// still work — end it so the trace commits.
		gchild.End()
	}
	root.End()

	st := tr.Store()
	if st.Len() != 1 {
		t.Fatalf("store has %d traces, want 1", st.Len())
	}
	got, ok := st.Get(root.TraceID())
	if !ok {
		t.Fatalf("trace %s not retained", root.TraceID())
	}
	if got.Root != "client.upload /report" {
		t.Fatalf("root name %q, want client.upload /report", got.Root)
	}
	if !got.Error {
		t.Fatal("trace with failed span not flagged as error")
	}
	var sawChild, sawRoot bool
	for _, sp := range got.Spans {
		if sp.DurationNS <= 0 {
			t.Fatalf("span %s has non-positive duration %d", sp.Name, sp.DurationNS)
		}
		switch sp.Name {
		case "retry.attempt":
			sawChild = true
			if sp.ParentID != root.SpanID() {
				t.Fatalf("attempt parent %s, want %s", sp.ParentID, root.SpanID())
			}
			if sp.Error != "connection refused" {
				t.Fatalf("attempt error %q", sp.Error)
			}
			if len(sp.Events) != 1 || sp.Events[0].Msg != "first attempt" {
				t.Fatalf("attempt events %+v", sp.Events)
			}
		case "client.upload /report":
			sawRoot = true
			if sp.ParentID != "" {
				t.Fatalf("root has parent %s", sp.ParentID)
			}
			if len(sp.Attrs) != 1 || sp.Attrs[0].Key != "idempotency_key" {
				t.Fatalf("root attrs %+v", sp.Attrs)
			}
		}
	}
	if !sawChild || !sawRoot {
		t.Fatalf("spans missing: child=%v root=%v (%d spans)", sawChild, sawRoot, len(got.Spans))
	}
}

func TestNilSafety(t *testing.T) {
	var s *Span
	s.SetAttr("k", "v")
	s.AddEvent("e")
	s.SetError(errors.New("x"))
	s.End()
	if s.TraceID() != "" || s.SpanID() != "" || s.Traceparent() != "" {
		t.Fatal("nil span ids not empty")
	}

	var tr *Tracer
	if tr.Store() != nil {
		t.Fatal("nil tracer store not nil")
	}
	if _, s := tr.StartServer(context.Background(), "x", nil); s != nil {
		t.Fatal("nil tracer started a server span")
	}
	if _, s := tr.StartRemote(context.Background(), "x", TraceID{1}, SpanID{1}, true); s != nil {
		t.Fatal("nil tracer started a remote span")
	}
}

func TestUnsampledAndBareContext(t *testing.T) {
	// No tracer in ctx: Start is a no-op.
	ctx, s := Start(context.Background(), "x")
	if s != nil {
		t.Fatal("Start without tracer returned a span")
	}
	if ctx != context.Background() {
		t.Fatal("Start without tracer changed the context")
	}

	// StartChild never creates roots, even with a tracer present.
	tctx := WithTracer(context.Background(), newTestTracer(t, 1))
	if _, s := StartChild(tctx, "x"); s != nil {
		t.Fatal("StartChild created a root span")
	}

	// SampleRate 0: every root is dropped.
	zero := newTestTracer(t, 0)
	zctx := WithTracer(context.Background(), zero)
	for i := 0; i < 100; i++ {
		if _, s := Start(zctx, "x"); s != nil {
			t.Fatal("rate-0 tracer sampled a root")
		}
	}
	if zero.Store().Len() != 0 {
		t.Fatal("rate-0 tracer committed traces")
	}
}

func TestIDsForLogCorrelation(t *testing.T) {
	tr := newTestTracer(t, 1)
	ctx := WithTracer(context.Background(), tr)
	if _, _, ok := IDs(ctx); ok {
		t.Fatal("IDs ok without a span")
	}
	ctx, s := Start(ctx, "x")
	defer s.End()
	tid, sid, ok := IDs(ctx)
	if !ok || tid != s.TraceID() || sid != s.SpanID() {
		t.Fatalf("IDs = %s %s %v, want %s %s true", tid, sid, ok, s.TraceID(), s.SpanID())
	}
	if len(tid) != 32 || len(sid) != 16 {
		t.Fatalf("hex lengths %d/%d, want 32/16", len(tid), len(sid))
	}
}

func TestEndIsIdempotent(t *testing.T) {
	tr := newTestTracer(t, 1)
	ctx := WithTracer(context.Background(), tr)
	_, s := Start(ctx, "x")
	s.End()
	s.End()
	s.End()
	got, ok := tr.Store().Get(s.TraceID())
	if !ok || len(got.Spans) != 1 {
		t.Fatalf("double End duplicated spans: %+v ok=%v", got.Spans, ok)
	}
}

// TestFragmentMergeAcrossBursts models the outbox-drain path: the original
// upload span commits, then a later burst (drain) continues the same trace.
// The store must merge both fragments into one trace.
func TestFragmentMergeAcrossBursts(t *testing.T) {
	tr := newTestTracer(t, 1)
	ctx := WithTracer(context.Background(), tr)

	ctx, upload := Start(ctx, "client.upload /report")
	tp := upload.Traceparent()
	upload.AddEvent("queued to outbox")
	upload.End() // burst 1 commits

	// Minutes later: drain resumes from the stored traceparent.
	dctx, drain := Resume(WithTracer(context.Background(), tr), "client.drain /report", tp)
	if drain == nil {
		t.Fatal("Resume returned nil span")
	}
	if drain.TraceID() != upload.TraceID() {
		t.Fatalf("drain trace %s != upload trace %s", drain.TraceID(), upload.TraceID())
	}
	_, attempt := StartChild(dctx, "retry.attempt")
	attempt.End()
	drain.End() // burst 2 commits

	if n := tr.Store().Len(); n != 1 {
		t.Fatalf("store has %d traces, want 1 merged", n)
	}
	got, _ := tr.Store().Get(upload.TraceID())
	if len(got.Spans) != 3 {
		t.Fatalf("merged trace has %d spans, want 3", len(got.Spans))
	}
	if got.Root != "client.upload /report" {
		t.Fatalf("merged root %q", got.Root)
	}
}
