package trace

import (
	"context"
	"encoding/hex"
	"errors"
	"fmt"
	"net/http"
	"strings"
)

// Header is the W3C Trace Context request header carrying trace continuity:
// "00-{32 hex trace-id}-{16 hex parent-id}-{2 hex flags}".
const Header = "traceparent"

// ErrNoTraceparent marks a request without a traceparent header.
var ErrNoTraceparent = errors.New("trace: no traceparent header")

// Traceparent renders the span as an outgoing traceparent value (sampled
// flag set — an existing span is by definition recorded). "" on nil.
func (s *Span) Traceparent() string {
	if s == nil {
		return ""
	}
	return "00-" + s.traceID.String() + "-" + s.spanID.String() + "-01"
}

// Inject stamps the context's current span onto an outgoing header set. A
// context without a span leaves the headers untouched.
func Inject(ctx context.Context, h http.Header) {
	if s := FromContext(ctx); s != nil {
		h.Set(Header, s.Traceparent())
	}
}

// ParseTraceparent validates and decodes a traceparent value. Malformed
// input returns an error; callers fall back to starting a fresh root.
func ParseTraceparent(v string) (tid TraceID, parent SpanID, sampled bool, err error) {
	parts := strings.Split(v, "-")
	if len(parts) < 4 {
		return tid, parent, false, fmt.Errorf("trace: traceparent %q: want 4 dash-separated fields", v)
	}
	version, traceHex, parentHex, flagsHex := parts[0], parts[1], parts[2], parts[3]
	if len(version) != 2 || !isHex(version) {
		return tid, parent, false, fmt.Errorf("trace: traceparent %q: bad version", v)
	}
	if version == "ff" {
		return tid, parent, false, fmt.Errorf("trace: traceparent %q: forbidden version ff", v)
	}
	if version == "00" && len(parts) != 4 {
		return tid, parent, false, fmt.Errorf("trace: traceparent %q: version 00 has exactly 4 fields", v)
	}
	if len(traceHex) != 32 || !isHex(traceHex) {
		return tid, parent, false, fmt.Errorf("trace: traceparent %q: trace-id must be 32 lowercase hex chars", v)
	}
	if _, err := hex.Decode(tid[:], []byte(traceHex)); err != nil {
		return tid, parent, false, fmt.Errorf("trace: traceparent %q: trace-id not hex", v)
	}
	if tid.IsZero() {
		return tid, parent, false, fmt.Errorf("trace: traceparent %q: all-zero trace-id", v)
	}
	if len(parentHex) != 16 || !isHex(parentHex) {
		return tid, parent, false, fmt.Errorf("trace: traceparent %q: parent-id must be 16 lowercase hex chars", v)
	}
	if _, err := hex.Decode(parent[:], []byte(parentHex)); err != nil {
		return tid, parent, false, fmt.Errorf("trace: traceparent %q: parent-id not hex", v)
	}
	if parent.IsZero() {
		return tid, parent, false, fmt.Errorf("trace: traceparent %q: all-zero parent-id", v)
	}
	if len(flagsHex) != 2 || !isHex(flagsHex) {
		return tid, parent, false, fmt.Errorf("trace: traceparent %q: bad flags", v)
	}
	var flags byte
	if b, err := hex.DecodeString(flagsHex); err == nil {
		flags = b[0]
	}
	return tid, parent, flags&0x01 == 0x01, nil
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return true
}

// Extract decodes trace continuity from an incoming header set.
func Extract(h http.Header) (TraceID, SpanID, bool, error) {
	v := h.Get(Header)
	if v == "" {
		return TraceID{}, SpanID{}, false, ErrNoTraceparent
	}
	return ParseTraceparent(v)
}

// StartServer begins the server-side span for an incoming request: a valid
// traceparent continues the client's trace (honoring its sampling bit), and
// an absent or malformed header falls back to a fresh head-sampled root.
func (t *Tracer) StartServer(ctx context.Context, name string, h http.Header) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	if tid, parent, sampled, err := Extract(h); err == nil {
		return t.StartRemote(ctx, name, tid, parent, sampled)
	}
	return t.startRoot(ctx, name)
}

// Resume continues a trace from a stored traceparent value (e.g. an outbox
// entry whose original upload span is long closed). A malformed or empty
// value degrades to Start.
func Resume(ctx context.Context, name, traceparent string) (context.Context, *Span) {
	t := TracerFromContext(ctx)
	if t == nil {
		return ctx, nil
	}
	if tid, parent, sampled, err := ParseTraceparent(traceparent); err == nil {
		return t.StartRemote(ctx, name, tid, parent, sampled)
	}
	return Start(ctx, name)
}
