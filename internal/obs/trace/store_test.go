package trace

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func addTrace(s *Store, id, root string, dur time.Duration, hasErr bool) {
	errMsg := ""
	if hasErr {
		errMsg = "boom"
	}
	s.add(id, []SpanData{{
		TraceID:    id,
		SpanID:     "00f067aa0ba902b7",
		Name:       root,
		Start:      time.Unix(0, 0),
		DurationNS: int64(dur),
		Error:      errMsg,
	}}, hasErr)
}

// TestEvictionKeepsErrorAndSlowTraces: the tail-sampling contract — plain
// traces age out FIFO, but error traces and the slowest-per-endpoint survive.
func TestEvictionKeepsErrorAndSlowTraces(t *testing.T) {
	s := NewStore(8, 4, 2)

	addTrace(s, "err-trace", "POST /report", 5*time.Millisecond, true)
	addTrace(s, "slow-trace", "POST /report", time.Second, false)

	// Flood with enough plain fast traces to roll the recent ring many times.
	for i := 0; i < 100; i++ {
		addTrace(s, fmt.Sprintf("plain-%03d", i), "POST /report", time.Millisecond, false)
	}

	if _, ok := s.Get("err-trace"); !ok {
		t.Fatal("error trace evicted")
	}
	if _, ok := s.Get("slow-trace"); !ok {
		t.Fatal("slowest trace evicted")
	}
	if _, ok := s.Get("plain-000"); ok {
		t.Fatal("old plain trace survived a full ring roll")
	}

	recent := s.Recent()
	if len(recent) != 8 {
		t.Fatalf("recent has %d entries, want capacity 8", len(recent))
	}
	if recent[0].ID != "plain-099" {
		t.Fatalf("recent[0] = %s, want newest plain-099", recent[0].ID)
	}

	errs := s.Errors()
	if len(errs) != 1 || errs[0].ID != "err-trace" || !errs[0].Error {
		t.Fatalf("errors view %+v", errs)
	}

	slow := s.Slowest()["POST /report"]
	if len(slow) != 2 {
		t.Fatalf("slow list has %d entries, want 2", len(slow))
	}
	if slow[0].ID != "slow-trace" {
		t.Fatalf("slowest[0] = %s, want slow-trace", slow[0].ID)
	}
	if slow[0].DurationNS < slow[1].DurationNS {
		t.Fatal("slow list not sorted slowest-first")
	}
}

func TestErrorRingBounded(t *testing.T) {
	s := NewStore(4, 2, 1)
	for i := 0; i < 10; i++ {
		addTrace(s, fmt.Sprintf("err-%02d", i), fmt.Sprintf("GET /x%d", i), time.Millisecond, true)
	}
	if got := len(s.Errors()); got != 2 {
		t.Fatalf("error ring has %d entries, want 2", got)
	}
	if s.Errors()[0].ID != "err-09" {
		t.Fatalf("error ring newest = %s", s.Errors()[0].ID)
	}
}

func TestFragmentMergeRecomputesDuration(t *testing.T) {
	s := NewStore(8, 4, 2)
	base := time.Unix(100, 0)
	s.add("tid", []SpanData{{TraceID: "tid", SpanID: "a", Name: "root", Start: base, DurationNS: int64(10 * time.Millisecond)}}, false)
	// A later fragment extends the trace's wall-clock envelope.
	s.add("tid", []SpanData{{TraceID: "tid", SpanID: "b", ParentID: "a", Name: "drain", Start: base.Add(time.Second), DurationNS: int64(50 * time.Millisecond)}}, false)

	tr, ok := s.Get("tid")
	if !ok {
		t.Fatal("merged trace missing")
	}
	if len(tr.Spans) != 2 {
		t.Fatalf("%d spans, want 2", len(tr.Spans))
	}
	if tr.Root != "root" {
		t.Fatalf("root %q", tr.Root)
	}
	want := int64(time.Second + 50*time.Millisecond)
	if tr.DurationNS != want {
		t.Fatalf("duration %d, want %d (envelope of both fragments)", tr.DurationNS, want)
	}
}

func TestHandlerIndexAndGet(t *testing.T) {
	s := NewStore(8, 4, 2)
	addTrace(s, "aaaa", "POST /report", time.Millisecond, false)
	addTrace(s, "bbbb", "POST /report", time.Second, true)

	mux := http.NewServeMux()
	Mount(mux, s)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("index status %d", resp.StatusCode)
	}
	var idx struct {
		Recent  []TraceSummary            `json:"recent"`
		Slowest map[string][]TraceSummary `json:"slowest"`
		Errors  []TraceSummary            `json:"errors"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&idx); err != nil {
		t.Fatalf("index decode: %v", err)
	}
	if len(idx.Recent) != 2 || len(idx.Errors) != 1 || len(idx.Slowest["POST /report"]) != 2 {
		t.Fatalf("index %+v", idx)
	}

	resp, err = http.Get(srv.URL + "/debug/traces/bbbb")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var tr TraceData
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatalf("trace decode: %v", err)
	}
	if tr.ID != "bbbb" || !tr.Error || len(tr.Spans) != 1 {
		t.Fatalf("trace %+v", tr)
	}

	resp, err = http.Get(srv.URL + "/debug/traces/missing")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing trace status %d, want 404", resp.StatusCode)
	}
}
