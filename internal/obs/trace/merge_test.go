package trace

import (
	"testing"
	"time"
)

func mergeSpan(traceID, spanID, parentID, name string, remote bool, start time.Time) SpanData {
	return SpanData{
		TraceID:    traceID,
		SpanID:     spanID,
		ParentID:   parentID,
		Remote:     remote,
		Name:       name,
		Start:      start,
		DurationNS: int64(time.Millisecond),
	}
}

func TestMergeStitchesFragments(t *testing.T) {
	const id = "4bf92f3577b34da6a3ce929d0e0e4736"
	t0 := time.Unix(1_700_000_000, 0)

	// Router fragment: the root span.
	router := TraceData{ID: id, Spans: []SpanData{
		mergeSpan(id, "aaaaaaaaaaaaaaaa", "", "router POST /v1/reports", false, t0),
	}}
	// Shard fragment: handler continued over the wire plus a local child.
	shard := TraceData{ID: id, Spans: []SpanData{
		mergeSpan(id, "bbbbbbbbbbbbbbbb", "aaaaaaaaaaaaaaaa", "server POST /v1/reports", true, t0.Add(time.Millisecond)),
		mergeSpan(id, "cccccccccccccccc", "bbbbbbbbbbbbbbbb", "store.add_report", false, t0.Add(2*time.Millisecond)),
	}}

	merged, ok := Merge(router, shard)
	if !ok {
		t.Fatal("Merge reported no trace")
	}
	if merged.ID != id {
		t.Fatalf("merged id = %q, want %q", merged.ID, id)
	}
	if len(merged.Spans) != 3 {
		t.Fatalf("merged spans = %d, want 3", len(merged.Spans))
	}
	if merged.Root != "router POST /v1/reports" {
		t.Fatalf("merged root = %q", merged.Root)
	}
	// Spans are sorted by start: router hop first.
	if merged.Spans[0].SpanID != "aaaaaaaaaaaaaaaa" {
		t.Fatalf("first span = %s", merged.Spans[0].SpanID)
	}
}

func TestMergeDeduplicatesSpans(t *testing.T) {
	const id = "00f067aa0ba902b74bf92f3577b34da6"
	t0 := time.Unix(1_700_000_000, 0)
	root := mergeSpan(id, "aaaaaaaaaaaaaaaa", "", "root", false, t0)
	child := mergeSpan(id, "bbbbbbbbbbbbbbbb", "aaaaaaaaaaaaaaaa", "child", false, t0.Add(time.Millisecond))

	// The same span arriving in two fragments (e.g. the router's own store
	// answered the fan-out too) must not double.
	a := TraceData{ID: id, Spans: []SpanData{root, child}}
	b := TraceData{ID: id, Spans: []SpanData{child}}
	merged, ok := Merge(a, b)
	if !ok || len(merged.Spans) != 2 {
		t.Fatalf("merged spans = %d (ok=%v), want 2", len(merged.Spans), ok)
	}
}

func TestMergeErrorPropagates(t *testing.T) {
	const id = "abcdefabcdefabcdefabcdefabcdefab"
	t0 := time.Unix(1_700_000_000, 0)
	okFrag := TraceData{ID: id, Spans: []SpanData{
		mergeSpan(id, "aaaaaaaaaaaaaaaa", "", "root", false, t0),
	}}
	errSpan := mergeSpan(id, "bbbbbbbbbbbbbbbb", "aaaaaaaaaaaaaaaa", "failing", false, t0.Add(time.Millisecond))
	errSpan.Error = "boom"
	errFrag := TraceData{ID: id, Error: true, Spans: []SpanData{errSpan}}

	merged, ok := Merge(okFrag, errFrag)
	if !ok || !merged.Error {
		t.Fatalf("merged error flag = %v (ok=%v), want true", merged.Error, ok)
	}
}

func TestMergeEmpty(t *testing.T) {
	if _, ok := Merge(); ok {
		t.Fatal("Merge() of nothing reported a trace")
	}
	if _, ok := Merge(TraceData{}, TraceData{}); ok {
		t.Fatal("Merge of empty fragments reported a trace")
	}
}
