package obs

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterSemantics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "help")
	if c.Value() != 0 {
		t.Fatalf("fresh counter = %d, want 0", c.Value())
	}
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	// Same (name, labels) returns the same instrument.
	if r.Counter("test_total", "help") != c {
		t.Fatal("counter lookup did not return the cached instrument")
	}
	// Different labels yield a distinct series.
	c2 := r.Counter("test_total", "help", L("k", "v"))
	if c2 == c {
		t.Fatal("labeled counter aliases the unlabeled one")
	}
}

func TestGaugeSemantics(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("test_gauge", "help")
	g.Set(2.5)
	if g.Value() != 2.5 {
		t.Fatalf("gauge = %g, want 2.5", g.Value())
	}
	g.Add(-1)
	if g.Value() != 1.5 {
		t.Fatalf("gauge after Add = %g, want 1.5", g.Value())
	}
}

func TestHistogramSemantics(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_hist", "help", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.5, 3, 10} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 16 {
		t.Fatalf("sum = %g, want 16", h.Sum())
	}
	// Bucket counts: le=1 → {0.5, 1}, le=2 → +{1.5}, le=5 → +{3}, +Inf → +{10}.
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Fatalf("bucket %d = %d, want %d", i, got, w)
		}
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "")
	g := r.Gauge("x", "")
	h := r.Histogram("x_seconds", "", nil)
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	StartTimer(h).ObserveDuration()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil instruments must read as zero")
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("nil registry exposition: err=%v body=%q", err, sb.String())
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	r := NewRegistry()
	r.Counter("dual", "")
	r.Gauge("dual", "")
}

// TestExpositionGolden pins the Prometheus text format: HELP/TYPE headers,
// sorted series, escaped labels, cumulative histogram buckets.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("app_requests_total", "Requests served.", L("route", "/v1/x"), L("code", "200")).Add(3)
	r.Counter("app_requests_total", "Requests served.", L("route", "/v1/x"), L("code", "500")).Inc()
	r.Gauge("app_temperature", "Current temperature.").Set(36.5)
	h := r.Histogram("app_latency_seconds", "Request latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)
	r.Counter("app_weird_total", "", L("q", `a"b\c`+"\n")).Inc()

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP app_latency_seconds Request latency.
# TYPE app_latency_seconds histogram
app_latency_seconds_bucket{le="0.1"} 1
app_latency_seconds_bucket{le="1"} 2
app_latency_seconds_bucket{le="+Inf"} 3
app_latency_seconds_sum 2.55
app_latency_seconds_count 3
# HELP app_requests_total Requests served.
# TYPE app_requests_total counter
app_requests_total{code="200",route="/v1/x"} 3
app_requests_total{code="500",route="/v1/x"} 1
# HELP app_temperature Current temperature.
# TYPE app_temperature gauge
app_temperature 36.5
# TYPE app_weird_total counter
app_weird_total{q="a\"b\\c\n"} 1
`
	if sb.String() != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", sb.String(), want)
	}
}

func TestHandlerContentType(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "x_total 1") {
		t.Fatalf("body = %q", rec.Body.String())
	}
}

func TestOnScrapeHook(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("sampled", "")
	calls := 0
	r.OnScrape(func() { calls++; g.Set(float64(calls)) })
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if calls != 1 || !strings.Contains(sb.String(), "sampled 1") {
		t.Fatalf("hook not applied before exposition: calls=%d body=%q", calls, sb.String())
	}
}

// TestConcurrentIncrements exercises every instrument from many goroutines;
// under -race this doubles as the registry's data-race check.
func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Mix cached instruments with registry lookups to exercise the
			// lock paths too.
			c := r.Counter("conc_total", "")
			h := r.Histogram("conc_seconds", "", []float64{0.5})
			for i := 0; i < perWorker; i++ {
				c.Inc()
				r.Gauge("conc_gauge", "").Add(1)
				h.Observe(float64(i%2) * 0.75)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("conc_total", "").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("conc_gauge", "").Value(); got != workers*perWorker {
		t.Fatalf("gauge = %g, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("conc_seconds", "", []float64{0.5}).Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

func TestBucketHelpers(t *testing.T) {
	lin := LinearBuckets(1, 2, 3)
	if lin[0] != 1 || lin[1] != 3 || lin[2] != 5 {
		t.Fatalf("LinearBuckets = %v", lin)
	}
	exp := ExponentialBuckets(1, 10, 3)
	if exp[0] != 1 || exp[1] != 10 || exp[2] != 100 {
		t.Fatalf("ExponentialBuckets = %v", exp)
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_test_seconds", "", []float64{0.1, 0.2, 0.4, 0.8})

	// Empty histogram: no estimate.
	if v := h.Quantile(0.5); !math.IsNaN(v) {
		t.Fatalf("empty histogram p50 = %v, want NaN", v)
	}

	// 100 samples spread uniformly through (0, 0.1]: every quantile
	// interpolates inside the first bucket.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 0.001)
	}
	if p50 := h.Quantile(0.5); math.Abs(p50-0.05) > 1e-9 {
		t.Fatalf("p50 = %v, want 0.05", p50)
	}
	if p99 := h.Quantile(0.99); math.Abs(p99-0.099) > 1e-9 {
		t.Fatalf("p99 = %v, want 0.099", p99)
	}

	// One outlier beyond the last bound lands in +Inf: the estimate clamps
	// to the last finite bound once the rank reaches it.
	h.Observe(10)
	if p := h.Quantile(1); p != 0.8 {
		t.Fatalf("p100 with +Inf sample = %v, want clamp to 0.8", p)
	}

	// Out-of-range q.
	if v := h.Quantile(1.5); !math.IsNaN(v) {
		t.Fatalf("q=1.5 = %v, want NaN", v)
	}
	var nilH *Histogram
	if v := nilH.Quantile(0.5); !math.IsNaN(v) {
		t.Fatalf("nil histogram = %v, want NaN", v)
	}
}

func TestRegistryQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("req_seconds", "", []float64{0.1, 1}, L("route", "/report"))
	r.Histogram("empty_seconds", "", nil) // never observed: skipped
	r.Counter("not_a_histogram", "").Inc()
	for i := 0; i < 10; i++ {
		h.Observe(0.05)
	}

	q := r.Quantiles()
	if len(q) != 1 {
		t.Fatalf("quantiles for %d series, want 1: %+v", len(q), q)
	}
	est, ok := q[`req_seconds{route="/report"}`]
	if !ok {
		t.Fatalf("series key missing: %+v", q)
	}
	for _, p := range []string{"p50", "p95", "p99"} {
		v, ok := est[p]
		if !ok {
			t.Fatalf("%s missing: %+v", p, est)
		}
		if v <= 0 || v > 0.1 {
			t.Fatalf("%s = %v, want within first bucket", p, v)
		}
	}
	if got := est["count"]; got != 10 {
		t.Fatalf("count = %v, want 10 (quantiles must carry their sample count)", got)
	}

	var nilR *Registry
	if nilR.Quantiles() != nil {
		t.Fatal("nil registry quantiles not nil")
	}
}

func TestDebugVarsIncludesQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("vars_seconds", "", []float64{0.1, 1})
	h.Observe(0.05)
	srv := httptest.NewServer(NewDebugMux(r))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("vars not valid JSON: %v", err)
	}
	if _, ok := doc["memstats"]; !ok {
		t.Fatal("standard expvar memstats missing")
	}
	var q map[string]map[string]float64
	if err := json.Unmarshal(doc["crowdwifi_histogram_quantiles"], &q); err != nil {
		t.Fatalf("quantile block: %v (doc keys: %v)", err, len(doc))
	}
	if _, ok := q["vars_seconds"]; !ok {
		t.Fatalf("vars_seconds quantiles missing: %+v", q)
	}
}
