package obs

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterSemantics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "help")
	if c.Value() != 0 {
		t.Fatalf("fresh counter = %d, want 0", c.Value())
	}
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	// Same (name, labels) returns the same instrument.
	if r.Counter("test_total", "help") != c {
		t.Fatal("counter lookup did not return the cached instrument")
	}
	// Different labels yield a distinct series.
	c2 := r.Counter("test_total", "help", L("k", "v"))
	if c2 == c {
		t.Fatal("labeled counter aliases the unlabeled one")
	}
}

func TestGaugeSemantics(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("test_gauge", "help")
	g.Set(2.5)
	if g.Value() != 2.5 {
		t.Fatalf("gauge = %g, want 2.5", g.Value())
	}
	g.Add(-1)
	if g.Value() != 1.5 {
		t.Fatalf("gauge after Add = %g, want 1.5", g.Value())
	}
}

func TestHistogramSemantics(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_hist", "help", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.5, 3, 10} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 16 {
		t.Fatalf("sum = %g, want 16", h.Sum())
	}
	// Bucket counts: le=1 → {0.5, 1}, le=2 → +{1.5}, le=5 → +{3}, +Inf → +{10}.
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Fatalf("bucket %d = %d, want %d", i, got, w)
		}
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "")
	g := r.Gauge("x", "")
	h := r.Histogram("x_seconds", "", nil)
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	StartTimer(h).ObserveDuration()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil instruments must read as zero")
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("nil registry exposition: err=%v body=%q", err, sb.String())
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	r := NewRegistry()
	r.Counter("dual", "")
	r.Gauge("dual", "")
}

// TestExpositionGolden pins the Prometheus text format: HELP/TYPE headers,
// sorted series, escaped labels, cumulative histogram buckets.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("app_requests_total", "Requests served.", L("route", "/v1/x"), L("code", "200")).Add(3)
	r.Counter("app_requests_total", "Requests served.", L("route", "/v1/x"), L("code", "500")).Inc()
	r.Gauge("app_temperature", "Current temperature.").Set(36.5)
	h := r.Histogram("app_latency_seconds", "Request latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)
	r.Counter("app_weird_total", "", L("q", `a"b\c`+"\n")).Inc()

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP app_latency_seconds Request latency.
# TYPE app_latency_seconds histogram
app_latency_seconds_bucket{le="0.1"} 1
app_latency_seconds_bucket{le="1"} 2
app_latency_seconds_bucket{le="+Inf"} 3
app_latency_seconds_sum 2.55
app_latency_seconds_count 3
# HELP app_requests_total Requests served.
# TYPE app_requests_total counter
app_requests_total{code="200",route="/v1/x"} 3
app_requests_total{code="500",route="/v1/x"} 1
# HELP app_temperature Current temperature.
# TYPE app_temperature gauge
app_temperature 36.5
# TYPE app_weird_total counter
app_weird_total{q="a\"b\\c\n"} 1
`
	if sb.String() != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", sb.String(), want)
	}
}

func TestHandlerContentType(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "x_total 1") {
		t.Fatalf("body = %q", rec.Body.String())
	}
}

func TestOnScrapeHook(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("sampled", "")
	calls := 0
	r.OnScrape(func() { calls++; g.Set(float64(calls)) })
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if calls != 1 || !strings.Contains(sb.String(), "sampled 1") {
		t.Fatalf("hook not applied before exposition: calls=%d body=%q", calls, sb.String())
	}
}

// TestConcurrentIncrements exercises every instrument from many goroutines;
// under -race this doubles as the registry's data-race check.
func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Mix cached instruments with registry lookups to exercise the
			// lock paths too.
			c := r.Counter("conc_total", "")
			h := r.Histogram("conc_seconds", "", []float64{0.5})
			for i := 0; i < perWorker; i++ {
				c.Inc()
				r.Gauge("conc_gauge", "").Add(1)
				h.Observe(float64(i%2) * 0.75)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("conc_total", "").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("conc_gauge", "").Value(); got != workers*perWorker {
		t.Fatalf("gauge = %g, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("conc_seconds", "", []float64{0.5}).Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

func TestBucketHelpers(t *testing.T) {
	lin := LinearBuckets(1, 2, 3)
	if lin[0] != 1 || lin[1] != 3 || lin[2] != 5 {
		t.Fatalf("LinearBuckets = %v", lin)
	}
	exp := ExponentialBuckets(1, 10, 3)
	if exp[0] != 1 || exp[1] != 10 || exp[2] != 100 {
		t.Fatalf("ExponentialBuckets = %v", exp)
	}
}
