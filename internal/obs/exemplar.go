package obs

import "time"

// Exemplar links one histogram observation to the trace that produced it, so
// "what does a 2-second upload actually look like?" is answered by fetching
// /debug/traces/{TraceID} instead of guessing from aggregates.
type Exemplar struct {
	// TraceID is the hex trace id of the request that produced the sample.
	TraceID string `json:"traceId"`
	// Value is the observed value (seconds for latency histograms).
	Value float64 `json:"value"`
	// Time is when the sample was observed.
	Time time.Time `json:"time"`
}

// ObserveWithExemplar records one sample and, when traceID is non-empty,
// remembers it as the bucket's exemplar (latest per bucket wins, matching
// Prometheus semantics). The highest non-empty bucket therefore always
// carries a trace id from one of the slowest recent observations — exactly
// the trace the store's slowest-N tail retention keeps alive.
func (h *Histogram) ObserveWithExemplar(v float64, traceID string) {
	if h == nil {
		return
	}
	i := h.bucketIndex(v)
	h.counts[i].Add(1)
	h.n.Add(1)
	h.sum.add(v)
	if traceID != "" {
		h.exemplars[i].Store(&Exemplar{TraceID: traceID, Value: v, Time: time.Now()})
	}
}

// bucketIndex returns the index of the bucket v falls in (len(upper) for
// +Inf).
func (h *Histogram) bucketIndex(v float64) int {
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	return i
}

// BucketExemplar returns the exemplar recorded for bucket i (0-based over
// the finite buckets, len(upper) addressing +Inf), or nil when that bucket
// never saw an exemplared observation.
func (h *Histogram) BucketExemplar(i int) *Exemplar {
	if h == nil || i < 0 || i >= len(h.exemplars) {
		return nil
	}
	return h.exemplars[i].Load()
}

// SlowestExemplar returns the exemplar of the highest non-empty bucket — the
// trace id to chase when the tail looks wrong. Nil when no exemplars were
// recorded.
func (h *Histogram) SlowestExemplar() *Exemplar {
	if h == nil {
		return nil
	}
	for i := len(h.exemplars) - 1; i >= 0; i-- {
		if ex := h.exemplars[i].Load(); ex != nil {
			return ex
		}
	}
	return nil
}

// BucketExemplars returns the recorded exemplars keyed by the rendered upper
// bound of their bucket ("+Inf" for the overflow bucket). Empty when none
// were recorded.
func (h *Histogram) BucketExemplars() map[string]Exemplar {
	if h == nil {
		return nil
	}
	out := map[string]Exemplar{}
	for i := range h.exemplars {
		ex := h.exemplars[i].Load()
		if ex == nil {
			continue
		}
		le := "+Inf"
		if i < len(h.upper) {
			le = formatFloat(h.upper[i])
		}
		out[le] = *ex
	}
	return out
}

// Exemplars returns every recorded exemplar across the registry's histogram
// series, keyed "name{labels}" → bucket upper bound → exemplar. Feeds the
// /debug/vars document so a scrape can jump straight from a slow bucket to
// its trace.
func (r *Registry) Exemplars() map[string]map[string]Exemplar {
	if r == nil {
		return nil
	}
	out := map[string]map[string]Exemplar{}
	for _, f := range r.histogramFamilies() {
		for k, h := range f.histogramChildren() {
			ex := h.BucketExemplars()
			if len(ex) == 0 {
				continue
			}
			series := f.name
			if k != "" {
				series += "{" + k + "}"
			}
			out[series] = ex
		}
	}
	return out
}
