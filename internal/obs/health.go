package obs

import (
	"encoding/json"
	"net/http"
	"sync"
)

// Health tracks process liveness and readiness for /healthz and /readyz.
// Liveness is unconditional (the process answering at all is the signal);
// readiness flips off while the server cannot usefully take traffic — WAL
// recovery/replay at startup, or the final snapshot during SIGTERM shutdown.
// A nil *Health accepts every method as a no-op and reports not ready.
type Health struct {
	mu     sync.Mutex
	ready  bool
	reason string
}

// NewHealth returns a Health that starts not ready ("starting").
func NewHealth() *Health {
	return &Health{reason: "starting"}
}

// SetReady marks the process ready to serve traffic.
func (h *Health) SetReady() {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.ready, h.reason = true, ""
	h.mu.Unlock()
}

// SetNotReady marks the process unable to serve traffic, with a reason
// surfaced on /readyz (e.g. "wal replay", "shutdown snapshot").
func (h *Health) SetNotReady(reason string) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.ready, h.reason = false, reason
	h.mu.Unlock()
}

// Ready reports the current readiness state and its reason when not ready.
func (h *Health) Ready() (bool, string) {
	if h == nil {
		return false, "no health tracker"
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.ready, h.reason
}

// LiveHandler serves /healthz: always 200 while the process can answer.
func (h *Health) LiveHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = json.NewEncoder(w).Encode(map[string]string{"status": "ok"})
	})
}

// ReadyHandler serves /readyz: 200 when ready, 503 with the reason when not.
func (h *Health) ReadyHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		ready, reason := h.Ready()
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if !ready {
			w.WriteHeader(http.StatusServiceUnavailable)
			_ = json.NewEncoder(w).Encode(map[string]string{"status": "not ready", "reason": reason})
			return
		}
		_ = json.NewEncoder(w).Encode(map[string]string{"status": "ready"})
	})
}

// MountHealth attaches /healthz and /readyz to mux.
func MountHealth(mux *http.ServeMux, h *Health) {
	mux.Handle("/healthz", h.LiveHandler())
	mux.Handle("/readyz", h.ReadyHandler())
}
