package obs

import (
	"encoding/json"
	"net/http"
	"sync"
)

// Health tracks process liveness and readiness for /healthz and /readyz.
// Liveness is unconditional (the process answering at all is the signal);
// readiness flips off while the server cannot usefully take traffic — WAL
// recovery/replay at startup, or the final snapshot during SIGTERM shutdown.
// A degraded mode (overloaded, read-only, recovering) is a separate axis:
// the server is still serving, so /readyz stays 200 but carries the mode in
// its body — orchestrators keep routing, operators see the degradation.
// A nil *Health accepts every method as a no-op and reports not ready.
type Health struct {
	mu     sync.Mutex
	ready  bool
	reason string
	mode   string
}

// NewHealth returns a Health that starts not ready ("starting").
func NewHealth() *Health {
	return &Health{reason: "starting"}
}

// SetReady marks the process ready to serve traffic.
func (h *Health) SetReady() {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.ready, h.reason = true, ""
	h.mu.Unlock()
}

// SetNotReady marks the process unable to serve traffic, with a reason
// surfaced on /readyz (e.g. "wal replay", "shutdown snapshot").
func (h *Health) SetNotReady(reason string) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.ready, h.reason = false, reason
	h.mu.Unlock()
}

// SetMode records the server's degradation mode ("healthy", "overloaded",
// "read-only", "recovering"), surfaced in the /readyz body without changing
// the readiness verdict.
func (h *Health) SetMode(mode string) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.mode = mode
	h.mu.Unlock()
}

// Mode returns the recorded degradation mode ("" when never set).
func (h *Health) Mode() string {
	if h == nil {
		return ""
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.mode
}

// Ready reports the current readiness state and its reason when not ready.
func (h *Health) Ready() (bool, string) {
	if h == nil {
		return false, "no health tracker"
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.ready, h.reason
}

// LiveHandler serves /healthz: always 200 while the process can answer.
func (h *Health) LiveHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = json.NewEncoder(w).Encode(map[string]string{"status": "ok"})
	})
}

// ReadyHandler serves /readyz: 200 when ready, 503 with the reason when not.
// A degraded-but-serving server answers 200 with its mode in the body — the
// distinction matters because a 503 would make orchestrators stop routing to
// a server that is, by design, still answering lookups.
func (h *Health) ReadyHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		ready, reason := h.Ready()
		mode := h.Mode()
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		body := map[string]string{}
		if mode != "" {
			body["mode"] = mode
		}
		if !ready {
			w.WriteHeader(http.StatusServiceUnavailable)
			body["status"], body["reason"] = "not ready", reason
			_ = json.NewEncoder(w).Encode(body)
			return
		}
		if mode != "" && mode != "healthy" {
			body["status"] = "degraded"
		} else {
			body["status"] = "ready"
		}
		_ = json.NewEncoder(w).Encode(body)
	})
}

// MountHealth attaches /healthz and /readyz to mux.
func MountHealth(mux *http.ServeMux, h *Health) {
	mux.Handle("/healthz", h.LiveHandler())
	mux.Handle("/readyz", h.ReadyHandler())
}
