package obs

import "time"

// Timer measures a duration and records it into a histogram in seconds.
// Usage:
//
//	t := obs.StartTimer(hist)
//	defer t.ObserveDuration()
//
// Timer is a value type so the defer pattern allocates nothing.
type Timer struct {
	start time.Time
	h     *Histogram
}

// StartTimer starts timing against h (h may be nil; the observation is then
// dropped but the elapsed duration is still returned).
func StartTimer(h *Histogram) Timer {
	return Timer{start: time.Now(), h: h}
}

// ObserveDuration records the elapsed time into the histogram and returns it.
func (t Timer) ObserveDuration() time.Duration {
	d := time.Since(t.start)
	t.h.Observe(d.Seconds())
	return d
}
