package obs

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"crowdwifi/internal/obs/trace"
)

// Level orders log severities.
type Level int32

// Log levels, least to most severe.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String names the level for output and flag round-tripping.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return fmt.Sprintf("level(%d)", int32(l))
	}
}

// ParseLevel maps a -log-level flag value onto a Level.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, nil
	case "info", "":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	default:
		return LevelInfo, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", s)
	}
}

// Logger is a leveled structured logger emitting one key=value line per
// record. It carries no global state: the writer, the level, and any bound
// context travel with the value. A nil *Logger discards everything.
type Logger struct {
	mu    *sync.Mutex
	w     io.Writer
	level *atomic.Int32
	now   func() time.Time
	bound string // pre-rendered key=value pairs from With
}

// NewLogger returns a logger writing records at or above level to w.
func NewLogger(w io.Writer, level Level) *Logger {
	l := &Logger{mu: &sync.Mutex{}, w: w, level: &atomic.Int32{}, now: time.Now}
	l.level.Store(int32(level))
	return l
}

// SetLevel changes the minimum emitted level (safe for concurrent use).
func (l *Logger) SetLevel(level Level) {
	if l != nil {
		l.level.Store(int32(level))
	}
}

// Enabled reports whether records at level would be emitted.
func (l *Logger) Enabled(level Level) bool {
	return l != nil && int32(level) >= l.level.Load()
}

// With returns a logger that appends the given key=value pairs to every
// record. The child shares the parent's writer, lock, and level.
func (l *Logger) With(kvs ...any) *Logger {
	if l == nil || len(kvs) == 0 {
		return l
	}
	child := *l
	var sb strings.Builder
	sb.WriteString(l.bound)
	appendKVs(&sb, kvs)
	child.bound = sb.String()
	return &child
}

// Ctx returns a logger whose records carry the context's trace_id and
// span_id, correlating log lines with /debug/traces. A context without an
// active span returns the logger unchanged, so call sites can thread ctx
// unconditionally: `l.Ctx(ctx).Info(...)`.
func (l *Logger) Ctx(ctx context.Context) *Logger {
	if l == nil || ctx == nil {
		return l
	}
	tid, sid, ok := trace.IDs(ctx)
	if !ok {
		return l
	}
	return l.With("trace_id", tid, "span_id", sid)
}

// Debug logs at LevelDebug.
func (l *Logger) Debug(msg string, kvs ...any) { l.log(LevelDebug, msg, kvs) }

// Info logs at LevelInfo.
func (l *Logger) Info(msg string, kvs ...any) { l.log(LevelInfo, msg, kvs) }

// Warn logs at LevelWarn.
func (l *Logger) Warn(msg string, kvs ...any) { l.log(LevelWarn, msg, kvs) }

// Error logs at LevelError.
func (l *Logger) Error(msg string, kvs ...any) { l.log(LevelError, msg, kvs) }

func (l *Logger) log(level Level, msg string, kvs []any) {
	if !l.Enabled(level) {
		return
	}
	var sb strings.Builder
	sb.WriteString("ts=")
	sb.WriteString(l.now().UTC().Format(time.RFC3339))
	sb.WriteString(" level=")
	sb.WriteString(level.String())
	sb.WriteString(" msg=")
	sb.WriteString(formatValue(msg))
	sb.WriteString(l.bound)
	appendKVs(&sb, kvs)
	sb.WriteByte('\n')
	l.mu.Lock()
	_, _ = io.WriteString(l.w, sb.String())
	l.mu.Unlock()
}

func appendKVs(sb *strings.Builder, kvs []any) {
	for i := 0; i+1 < len(kvs); i += 2 {
		key, ok := kvs[i].(string)
		if !ok {
			key = fmt.Sprintf("%v", kvs[i])
		}
		sb.WriteByte(' ')
		sb.WriteString(key)
		sb.WriteByte('=')
		sb.WriteString(formatValue(kvs[i+1]))
	}
	if len(kvs)%2 != 0 {
		sb.WriteString(" !BADKEY=")
		sb.WriteString(formatValue(kvs[len(kvs)-1]))
	}
}

func formatValue(v any) string {
	var s string
	switch t := v.(type) {
	case string:
		s = t
	case error:
		s = t.Error()
	case time.Duration:
		s = t.String()
	case float64:
		s = strconv.FormatFloat(t, 'g', -1, 64)
	case float32:
		s = strconv.FormatFloat(float64(t), 'g', -1, 32)
	case fmt.Stringer:
		s = t.String()
	default:
		s = fmt.Sprintf("%v", v)
	}
	if s == "" || strings.ContainsAny(s, " \t\n\"=") {
		return strconv.Quote(s)
	}
	return s
}
