package obs

import (
	"math"
	"sync"
	"time"
)

// Rolling-window defaults: 12 slots of 5 s give a 60 s window, so the
// quantiles a dashboard (or the load generator's progress endpoint) reads
// describe the last minute of traffic, not the process lifetime.
const (
	DefaultWindow      = 60 * time.Second
	DefaultWindowSlots = 12
)

// WindowedHistogram couples a cumulative Histogram (still served on /metrics
// with its full bucket ladder) with a rotating ring of per-slot bucket
// counts. Reads over the ring cover only the last window, so a ten-minute
// load run reports the *current* p99 instead of a lifetime estimate diluted
// by warmup.
//
// Observations are double-counted on purpose: once into the cumulative
// histogram (atomic, lock-free, feeds Prometheus) and once into the active
// ring slot (under a short mutex). The ring rotates lazily on access; a slot
// older than the window is reset before reuse, so idle series decay to empty
// without a background goroutine.
//
// A nil *WindowedHistogram is a no-op, like every other obs instrument.
type WindowedHistogram struct {
	hist *Histogram
	slot time.Duration // width of one ring slot
	now  func() time.Time

	mu    sync.Mutex
	ring  []windowSlot
	epoch int64 // epoch of the slot last written (now / slot width)
}

type windowSlot struct {
	epoch  int64
	counts []uint64 // len(upper)+1, last is +Inf
	n      uint64
	sum    float64
}

// NewWindowedHistogram wraps h with a rolling window of the given total
// width split into slots ring slots. window ≤ 0 selects DefaultWindow,
// slots ≤ 0 selects DefaultWindowSlots, and a nil now selects time.Now.
// Returns nil for a nil h so call sites stay conditional-free.
func NewWindowedHistogram(h *Histogram, window time.Duration, slots int, now func() time.Time) *WindowedHistogram {
	if h == nil {
		return nil
	}
	if window <= 0 {
		window = DefaultWindow
	}
	if slots <= 0 {
		slots = DefaultWindowSlots
	}
	if now == nil {
		now = time.Now
	}
	w := &WindowedHistogram{
		hist: h,
		slot: window / time.Duration(slots),
		now:  now,
		ring: make([]windowSlot, slots),
	}
	for i := range w.ring {
		w.ring[i] = windowSlot{epoch: -1, counts: make([]uint64, len(h.upper)+1)}
	}
	return w
}

// Hist returns the underlying cumulative histogram.
func (w *WindowedHistogram) Hist() *Histogram {
	if w == nil {
		return nil
	}
	return w.hist
}

// Observe records one sample into both the cumulative histogram and the
// active window slot.
func (w *WindowedHistogram) Observe(v float64) {
	w.observe(v, "")
}

// ObserveWithExemplar is Observe plus an exemplar: the sample's bucket in the
// cumulative histogram remembers traceID (see Histogram.ObserveWithExemplar),
// linking the observation to a trace resolvable at /debug/traces/{id}.
func (w *WindowedHistogram) ObserveWithExemplar(v float64, traceID string) {
	w.observe(v, traceID)
}

func (w *WindowedHistogram) observe(v float64, traceID string) {
	if w == nil {
		return
	}
	w.hist.ObserveWithExemplar(v, traceID)
	i := w.hist.bucketIndex(v)
	e := w.now().UnixNano() / int64(w.slot)
	w.mu.Lock()
	s := w.slotFor(e)
	s.counts[i]++
	s.n++
	s.sum += v
	w.epoch = e
	w.mu.Unlock()
}

// slotFor returns the ring slot for epoch e, resetting it first when it
// still holds counts from an earlier rotation. Requires w.mu held.
func (w *WindowedHistogram) slotFor(e int64) *windowSlot {
	s := &w.ring[int(e%int64(len(w.ring)))]
	if s.epoch != e {
		for i := range s.counts {
			s.counts[i] = 0
		}
		s.n, s.sum, s.epoch = 0, 0, e
	}
	return s
}

// snapshot sums the live slots (epoch within the window ending now) into one
// flat view. Requires w.mu held.
func (w *WindowedHistogram) snapshotLocked(e int64) (counts []uint64, n uint64, sum float64) {
	counts = make([]uint64, len(w.hist.upper)+1)
	min := e - int64(len(w.ring)) + 1
	for i := range w.ring {
		s := &w.ring[i]
		if s.epoch < min || s.epoch > e {
			continue
		}
		for j, c := range s.counts {
			counts[j] += c
		}
		n += s.n
		sum += s.sum
	}
	return counts, n, sum
}

// Count returns the number of observations inside the current window.
func (w *WindowedHistogram) Count() uint64 {
	if w == nil {
		return 0
	}
	e := w.now().UnixNano() / int64(w.slot)
	w.mu.Lock()
	defer w.mu.Unlock()
	_, n, _ := w.snapshotLocked(e)
	return n
}

// Sum returns the sum of observations inside the current window.
func (w *WindowedHistogram) Sum() float64 {
	if w == nil {
		return 0
	}
	e := w.now().UnixNano() / int64(w.slot)
	w.mu.Lock()
	defer w.mu.Unlock()
	_, _, sum := w.snapshotLocked(e)
	return sum
}

// Quantile estimates the q-quantile over the current window only, with the
// same bucket interpolation as Histogram.Quantile. NaN when the window is
// empty or q is out of range.
func (w *WindowedHistogram) Quantile(q float64) float64 {
	if w == nil || q < 0 || q > 1 {
		return math.NaN()
	}
	e := w.now().UnixNano() / int64(w.slot)
	w.mu.Lock()
	counts, total, _ := w.snapshotLocked(e)
	w.mu.Unlock()
	return quantileFromCounts(w.hist.upper, counts, total, q)
}

// quantileFromCounts interpolates the q-quantile from one flat bucket-count
// vector (len(upper)+1, last slot +Inf) — the shared core of the lifetime
// and windowed estimators.
func quantileFromCounts(upper []float64, counts []uint64, total uint64, q float64) float64 {
	if total == 0 {
		return math.NaN()
	}
	rank := q * float64(total)
	var cum float64
	for i, ub := range upper {
		c := float64(counts[i])
		if cum+c >= rank {
			lo := 0.0
			if i > 0 {
				lo = upper[i-1]
			}
			if c == 0 {
				return ub
			}
			return lo + (ub-lo)*(rank-cum)/c
		}
		cum += c
	}
	if len(upper) == 0 {
		return math.NaN()
	}
	return upper[len(upper)-1]
}
