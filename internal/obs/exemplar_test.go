package obs

import (
	"sync"
	"testing"
)

func TestExemplarPerBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("ex_seconds", "test", []float64{0.1, 1, 10})

	h.ObserveWithExemplar(0.05, "trace-fast")
	h.ObserveWithExemplar(0.5, "trace-mid")
	h.ObserveWithExemplar(5, "trace-slow")
	h.Observe(100) // no exemplar: plain observations never overwrite one

	ex := h.BucketExemplars()
	if got := ex["0.1"].TraceID; got != "trace-fast" {
		t.Fatalf(`bucket 0.1 exemplar = %q, want "trace-fast"`, got)
	}
	if got := ex["1"].TraceID; got != "trace-mid" {
		t.Fatalf(`bucket 1 exemplar = %q, want "trace-mid"`, got)
	}
	if got := ex["10"].TraceID; got != "trace-slow" {
		t.Fatalf(`bucket 10 exemplar = %q, want "trace-slow"`, got)
	}
	if _, ok := ex["+Inf"]; ok {
		t.Fatal("+Inf bucket must have no exemplar: its only observation carried no trace")
	}

	// Slowest = highest non-empty exemplared bucket, regardless of the
	// un-exemplared +Inf observation.
	slow := h.SlowestExemplar()
	if slow == nil || slow.TraceID != "trace-slow" || slow.Value != 5 {
		t.Fatalf("SlowestExemplar = %+v, want trace-slow/5", slow)
	}

	// A later observation in the same bucket replaces the exemplar.
	h.ObserveWithExemplar(7, "trace-slower")
	if got := h.SlowestExemplar().TraceID; got != "trace-slower" {
		t.Fatalf("exemplar not replaced: %q", got)
	}

	// Counts are unaffected by exemplar bookkeeping.
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
}

func TestExemplarEmptyTraceIDIgnored(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("ex_empty_seconds", "test", nil)
	h.ObserveWithExemplar(0.5, "")
	if h.SlowestExemplar() != nil {
		t.Fatal("empty trace id must not record an exemplar")
	}
	var nilH *Histogram
	nilH.ObserveWithExemplar(1, "x") // must not panic
	if nilH.SlowestExemplar() != nil || nilH.BucketExemplars() != nil {
		t.Fatal("nil histogram exemplar reads must be empty")
	}
}

func TestRegistryExemplars(t *testing.T) {
	r := NewRegistry()
	a := r.Histogram("ex_reg_seconds", "test", []float64{1}, L("route", "/a"))
	b := r.WindowedHistogram("ex_reg_seconds", "test", []float64{1}, 0, 0, L("route", "/b"))
	a.ObserveWithExemplar(0.5, "trace-a")
	b.ObserveWithExemplar(2, "trace-b")

	all := r.Exemplars()
	if got := all[`ex_reg_seconds{route="/a"}`]["1"].TraceID; got != "trace-a" {
		t.Fatalf("series /a exemplar = %q, want trace-a (all: %v)", got, all)
	}
	if got := all[`ex_reg_seconds{route="/b"}`]["+Inf"].TraceID; got != "trace-b" {
		t.Fatalf("series /b exemplar = %q, want trace-b (all: %v)", got, all)
	}
	if r2 := NewRegistry(); len(r2.Exemplars()) != 0 {
		t.Fatal("fresh registry must expose no exemplars")
	}
}

func TestExemplarConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("ex_conc_seconds", "test", []float64{1})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.ObserveWithExemplar(0.5, "t")
				h.SlowestExemplar()
				h.BucketExemplars()
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != 8000 {
		t.Fatalf("count = %d, want 8000", got)
	}
}
