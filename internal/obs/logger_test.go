package obs

import (
	"context"
	"strings"
	"testing"
	"time"

	"crowdwifi/internal/obs/trace"
)

func fixedLogger(sb *strings.Builder, level Level) *Logger {
	l := NewLogger(sb, level)
	l.now = func() time.Time { return time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC) }
	return l
}

func TestLoggerFormat(t *testing.T) {
	var sb strings.Builder
	l := fixedLogger(&sb, LevelInfo)
	l.Info("server listening", "addr", ":8700", "routes", 7)
	want := `ts=2026-08-06T12:00:00Z level=info msg="server listening" addr=:8700 routes=7` + "\n"
	if sb.String() != want {
		t.Fatalf("got %q, want %q", sb.String(), want)
	}
}

func TestLoggerLevelFiltering(t *testing.T) {
	var sb strings.Builder
	l := fixedLogger(&sb, LevelWarn)
	l.Debug("d")
	l.Info("i")
	l.Warn("w")
	l.Error("e")
	out := sb.String()
	if strings.Contains(out, "level=debug") || strings.Contains(out, "level=info") {
		t.Fatalf("low levels leaked: %q", out)
	}
	if !strings.Contains(out, "level=warn") || !strings.Contains(out, "level=error") {
		t.Fatalf("high levels missing: %q", out)
	}
	l.SetLevel(LevelDebug)
	if !l.Enabled(LevelDebug) {
		t.Fatal("SetLevel(debug) did not enable debug")
	}
}

func TestLoggerQuoting(t *testing.T) {
	var sb strings.Builder
	l := fixedLogger(&sb, LevelDebug)
	l.Info("m", "q", `a "b" c`, "empty", "", "plain", "x", "eq", "a=b")
	out := sb.String()
	for _, want := range []string{`q="a \"b\" c"`, `empty=""`, ` plain=x`, `eq="a=b"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("output %q missing %q", out, want)
		}
	}
}

func TestLoggerWith(t *testing.T) {
	var sb strings.Builder
	l := fixedLogger(&sb, LevelInfo).With("component", "aggregator")
	l.Info("cycle", "fused", 3)
	if !strings.Contains(sb.String(), "component=aggregator fused=3") {
		t.Fatalf("bound context missing: %q", sb.String())
	}
}

func TestLoggerOddKVs(t *testing.T) {
	var sb strings.Builder
	fixedLogger(&sb, LevelInfo).Info("m", "lonely")
	if !strings.Contains(sb.String(), "!BADKEY=lonely") {
		t.Fatalf("odd kv not flagged: %q", sb.String())
	}
}

func TestNilLogger(t *testing.T) {
	var l *Logger
	l.Info("must not panic")
	l.SetLevel(LevelDebug)
	if l.Enabled(LevelError) {
		t.Fatal("nil logger must report disabled")
	}
	if l.With("k", "v") != nil {
		t.Fatal("nil logger With must stay nil")
	}
}

func TestParseLevel(t *testing.T) {
	for s, want := range map[string]Level{
		"debug": LevelDebug, "info": LevelInfo, "WARN": LevelWarn,
		"warning": LevelWarn, "error": LevelError, "": LevelInfo,
	} {
		got, err := ParseLevel(s)
		if err != nil || got != want {
			t.Fatalf("ParseLevel(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("ParseLevel(loud) must error")
	}
}

func TestLoggerCtx(t *testing.T) {
	var sb strings.Builder
	l := fixedLogger(&sb, LevelInfo)

	// No span in ctx: logger unchanged, no correlation keys.
	l.Ctx(context.Background()).Info("plain")
	if strings.Contains(sb.String(), "trace_id") {
		t.Fatalf("uncorrelated line gained trace_id: %q", sb.String())
	}
	sb.Reset()

	tr := trace.NewTracer(trace.Config{SampleRate: 1})
	ctx := trace.WithTracer(context.Background(), tr)
	ctx, span := trace.Start(ctx, "op")
	defer span.End()

	l.Ctx(ctx).Info("correlated", "k", "v")
	out := sb.String()
	if !strings.Contains(out, "trace_id="+span.TraceID()) {
		t.Fatalf("trace_id missing: %q", out)
	}
	if !strings.Contains(out, "span_id="+span.SpanID()) {
		t.Fatalf("span_id missing: %q", out)
	}
	if !strings.Contains(out, " k=v") {
		t.Fatalf("caller kvs lost: %q", out)
	}

	// Nil logger stays a no-op.
	var nilL *Logger
	nilL.Ctx(ctx).Info("dropped")
}
