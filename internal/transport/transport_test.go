package transport

import (
	"math"
	"testing"
)

func allGood(n int) []bool {
	s := make([]bool, n)
	for i := range s {
		s[i] = true
	}
	return s
}

func TestRunPerfectLink(t *testing.T) {
	// 10 KB / 500 B = 21 packets (ceil), one per 100 ms slot → 2.1 s each.
	res, err := Run(allGood(1000), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 47 { // floor(1000/21)
		t.Fatalf("completed = %d, want 47", res.Completed)
	}
	if math.Abs(res.MedianSeconds-2.1) > 1e-9 {
		t.Fatalf("median = %v, want 2.1", res.MedianSeconds)
	}
	for _, tr := range res.Transfers[:res.Completed] {
		if !tr.Completed || tr.Restarts != 0 {
			t.Fatalf("unexpected transfer record %+v", tr)
		}
	}
}

func TestRunEmptySlots(t *testing.T) {
	if _, err := Run(nil, Config{}); err == nil {
		t.Fatal("expected error")
	}
}

func TestRunHalfLossSlower(t *testing.T) {
	slots := make([]bool, 2000)
	for i := range slots {
		slots[i] = i%2 == 0
	}
	res, err := Run(slots, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.MedianSeconds <= 2.1*1.5 {
		t.Fatalf("median %v should be well above the perfect-link 2.1 s", res.MedianSeconds)
	}
	perfect, _ := Run(allGood(2000), Config{})
	if res.Completed >= perfect.Completed {
		t.Fatal("lossy link completed at least as many transfers")
	}
}

func TestStallRestartsProgress(t *testing.T) {
	// 10 successes, 100-slot (10 s) gap, then plenty of successes: the gap
	// must reset progress, so the transfer needs 21 fresh successes after it.
	var slots []bool
	slots = append(slots, allGood(10)...)
	slots = append(slots, make([]bool, 100)...)
	slots = append(slots, allGood(40)...)
	res, err := Run(slots, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 1 {
		t.Fatalf("completed = %d, want 1", res.Completed)
	}
	tr := res.Transfers[0]
	if tr.Restarts != 1 {
		t.Fatalf("restarts = %d, want 1", tr.Restarts)
	}
	// Completion at slot 10+100+21 = 131 → 13.1 s.
	if math.Abs(tr.Seconds-13.1) > 1e-9 {
		t.Fatalf("duration = %v, want 13.1", tr.Seconds)
	}
}

func TestShortGapKeepsProgress(t *testing.T) {
	// A 5 s gap (50 slots) is under the 10 s stall threshold: progress kept.
	var slots []bool
	slots = append(slots, allGood(10)...)
	slots = append(slots, make([]bool, 50)...)
	slots = append(slots, allGood(11)...)
	res, err := Run(slots, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 1 {
		t.Fatalf("completed = %d, want 1", res.Completed)
	}
	if res.Transfers[0].Restarts != 0 {
		t.Fatalf("restarts = %d, want 0", res.Transfers[0].Restarts)
	}
}

func TestTrailingIncompleterecorded(t *testing.T) {
	res, err := Run(allGood(30), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 1 || len(res.Transfers) != 2 {
		t.Fatalf("completed=%d transfers=%d", res.Completed, len(res.Transfers))
	}
	if res.Transfers[1].Completed {
		t.Fatal("trailing partial transfer marked complete")
	}
}

func TestConfigOverrides(t *testing.T) {
	// 1 KB files of 500 B packets → 2 packets, 0.2 s on a perfect link.
	res, err := Run(allGood(10), Config{FileBytes: 1000, PacketBytes: 500})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 5 {
		t.Fatalf("completed = %d, want 5", res.Completed)
	}
	if math.Abs(res.MedianSeconds-0.2) > 1e-9 {
		t.Fatalf("median = %v", res.MedianSeconds)
	}
}

func TestPerSession(t *testing.T) {
	res := &Result{Completed: 10}
	if got := PerSession(res, 4); got != 2.5 {
		t.Fatalf("per session = %v", got)
	}
	if PerSession(res, 0) != 0 {
		t.Fatal("zero sessions should yield 0")
	}
}

func TestStallBoundaryExactlyAtThreshold(t *testing.T) {
	// The restart fires when the no-progress gap reaches exactly
	// StallSeconds: with 0.1 s slots and the 10 s default, a 100-slot gap
	// restarts, a 99-slot gap does not.
	mk := func(gap int) []bool {
		var slots []bool
		slots = append(slots, allGood(10)...)
		slots = append(slots, make([]bool, gap)...)
		slots = append(slots, allGood(21)...)
		return slots
	}

	res, err := Run(mk(99), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 1 || res.Transfers[0].Restarts != 0 {
		t.Fatalf("gap just under threshold: completed=%d restarts=%d, want 1/0",
			res.Completed, res.Transfers[0].Restarts)
	}
	// Progress was kept, so the transfer finishes 11 successes into the
	// final run: slot 10+99+11 = 120 → 12.0 s.
	if math.Abs(res.Transfers[0].Seconds-12.0) > 1e-9 {
		t.Fatalf("duration = %v, want 12.0", res.Transfers[0].Seconds)
	}

	res, err = Run(mk(100), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 1 || res.Transfers[0].Restarts != 1 {
		t.Fatalf("gap exactly at threshold: completed=%d restarts=%d, want 1/1",
			res.Completed, res.Transfers[0].Restarts)
	}
	// Progress was lost, so the transfer needs all 21 fresh successes:
	// slot 10+100+21 = 131 → 13.1 s.
	if math.Abs(res.Transfers[0].Seconds-13.1) > 1e-9 {
		t.Fatalf("duration = %v, want 13.1", res.Transfers[0].Seconds)
	}
}

func TestTraceEndsMidStall(t *testing.T) {
	// The trace cuts off during a dead stretch. Past the stall threshold the
	// restart must be recorded on the trailing incomplete attempt; under it,
	// no restart — either way the attempt is reported, not dropped.
	var slots []bool
	slots = append(slots, allGood(10)...)
	slots = append(slots, make([]bool, 150)...) // restart at +100, then 50 more dead slots
	res, err := Run(slots, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 0 || len(res.Transfers) != 1 {
		t.Fatalf("completed=%d transfers=%d, want 0/1", res.Completed, len(res.Transfers))
	}
	tr := res.Transfers[0]
	if tr.Completed {
		t.Fatal("attempt cut off by trace end marked complete")
	}
	if tr.Restarts != 1 {
		t.Fatalf("restarts = %d, want 1 (stall elapsed before the trace ended)", tr.Restarts)
	}
	if tr.EndSlot != len(slots) {
		t.Fatalf("end slot = %d, want %d", tr.EndSlot, len(slots))
	}
	if math.Abs(tr.Seconds-16.0) > 1e-9 {
		t.Fatalf("duration = %v, want 16.0 (whole trace)", tr.Seconds)
	}

	// Same shape but the trace ends before the threshold: no restart.
	short := append(allGood(10), make([]bool, 60)...)
	res, err = Run(short, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Transfers[0].Restarts != 0 {
		t.Fatalf("restarts = %d, want 0 (stall never elapsed)", res.Transfers[0].Restarts)
	}
}

func TestPerSessionDegenerateSessionCounts(t *testing.T) {
	res := &Result{Completed: 7}
	// Zero and negative session counts cannot divide; the throughput metric
	// degrades to 0 instead of Inf/NaN.
	if got := PerSession(res, 0); got != 0 {
		t.Fatalf("PerSession(_, 0) = %v, want 0", got)
	}
	if got := PerSession(res, -3); got != 0 {
		t.Fatalf("PerSession(_, -3) = %v, want 0", got)
	}
	// Zero completions over real sessions is a plain 0, not an error.
	if got := PerSession(&Result{}, 5); got != 0 {
		t.Fatalf("PerSession(empty, 5) = %v, want 0", got)
	}
}
