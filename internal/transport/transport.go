// Package transport simulates the TCP file transfers of Section 6.3's
// connectivity experiment: 10 KB transfers over the per-slot packet success
// process of an association policy, with transfers that make no progress for
// 10 seconds terminated and restarted afresh. It reports the per-transfer
// completion times and the throughput (completed transfers per connectivity
// session) that Fig. 11 plots against lookup error.
package transport

import (
	"errors"

	"crowdwifi/internal/eval"
)

// Config describes the transfer workload.
type Config struct {
	// FileBytes is the transfer size (default 10·1024, the paper's 10 KB).
	FileBytes int
	// PacketBytes is the payload per successful slot (default 500, the
	// paper's packet size).
	PacketBytes int
	// SlotSeconds is the slot duration (default 0.1 s, the beacon interval).
	SlotSeconds float64
	// StallSeconds is the no-progress restart threshold (default 10 s).
	StallSeconds float64
}

func (c Config) fill() Config {
	if c.FileBytes <= 0 {
		c.FileBytes = 10 * 1024
	}
	if c.PacketBytes <= 0 {
		c.PacketBytes = 500
	}
	if c.SlotSeconds <= 0 {
		c.SlotSeconds = 0.1
	}
	if c.StallSeconds <= 0 {
		c.StallSeconds = 10
	}
	return c
}

// Transfer records one completed or abandoned file transfer.
type Transfer struct {
	// StartSlot and EndSlot bracket the attempt (EndSlot is one past the
	// final slot used).
	StartSlot, EndSlot int
	// Seconds is the wall-clock duration of the attempt.
	Seconds float64
	// Completed reports whether the file finished (false only for the
	// trailing attempt cut off by the end of the trace).
	Completed bool
	// Restarts counts the stall-triggered restarts inside this attempt.
	Restarts int
}

// Result aggregates a run of back-to-back transfers.
type Result struct {
	// Transfers lists every attempt in order.
	Transfers []Transfer
	// Completed is the number of finished transfers.
	Completed int
	// MedianSeconds is the median completion time over finished transfers
	// (0 when none finished).
	MedianSeconds float64
	// MeanSeconds is the mean completion time over finished transfers.
	MeanSeconds float64
}

// Run simulates back-to-back transfers over a slot success series: a new
// transfer starts as soon as the previous one completes. A transfer that
// sees no successful slot for StallSeconds is restarted from scratch (the
// paper's "terminated and re-started afresh"), with the clock still running
// — the restart models TCP's connection re-establishment after a timeout.
func Run(slots []bool, cfg Config) (*Result, error) {
	if len(slots) == 0 {
		return nil, errors.New("transport: empty slot series")
	}
	c := cfg.fill()
	packetsNeeded := (c.FileBytes + c.PacketBytes - 1) / c.PacketBytes
	stallSlots := int(c.StallSeconds / c.SlotSeconds)

	res := &Result{}
	var durations []float64

	start := 0
	progress := 0
	sinceProgress := 0
	restarts := 0
	for s := 0; s < len(slots); s++ {
		if slots[s] {
			progress++
			sinceProgress = 0
		} else {
			sinceProgress++
			if sinceProgress >= stallSlots {
				// Stall: lose progress, keep the clock.
				progress = 0
				sinceProgress = 0
				restarts++
			}
		}
		if progress >= packetsNeeded {
			seconds := float64(s-start+1) * c.SlotSeconds
			res.Transfers = append(res.Transfers, Transfer{
				StartSlot: start,
				EndSlot:   s + 1,
				Seconds:   seconds,
				Completed: true,
				Restarts:  restarts,
			})
			durations = append(durations, seconds)
			start = s + 1
			progress = 0
			sinceProgress = 0
			restarts = 0
		}
	}
	if start < len(slots) {
		res.Transfers = append(res.Transfers, Transfer{
			StartSlot: start,
			EndSlot:   len(slots),
			Seconds:   float64(len(slots)-start) * c.SlotSeconds,
			Completed: false,
			Restarts:  restarts,
		})
	}
	res.Completed = len(durations)
	res.MedianSeconds = eval.Median(durations)
	res.MeanSeconds = eval.Mean(durations)
	return res, nil
}

// PerSession computes the paper's throughput metric: completed transfers per
// connectivity session. sessions is the session count from the handoff
// analysis for the same trace and policy.
func PerSession(res *Result, sessions int) float64 {
	if sessions <= 0 {
		return 0
	}
	return float64(res.Completed) / float64(sessions)
}
