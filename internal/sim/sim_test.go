package sim

import (
	"math"
	"testing"

	"crowdwifi/internal/geo"
	"crowdwifi/internal/radio"
	"crowdwifi/internal/rng"
)

func TestUCIScenarioMatchesPaper(t *testing.T) {
	sc := UCI()
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(sc.APs) != 8 {
		t.Fatalf("APs = %d, want 8", len(sc.APs))
	}
	// Paper: pairwise distance > 50 m, radius 100 m, lattice 8 m.
	for i := 0; i < len(sc.APs); i++ {
		for j := i + 1; j < len(sc.APs); j++ {
			if d := sc.APs[i].Dist(sc.APs[j]); d <= 50 {
				t.Fatalf("APs %d,%d only %.1f m apart, paper requires > 50", i, j, d)
			}
		}
	}
	if sc.Radius != 100 || sc.Lattice != 8 {
		t.Fatalf("radius/lattice = %v/%v", sc.Radius, sc.Lattice)
	}
	// APs on grid points of the 8 m lattice (paper's first experiment).
	for i, ap := range sc.APs {
		if math.Mod(ap.X, 8) != 0 || math.Mod(ap.Y, 8) != 0 {
			t.Fatalf("AP %d at %v not on an 8 m grid point", i, ap)
		}
		if !sc.Area.Contains(ap) {
			t.Fatalf("AP %d outside the area", i)
		}
	}
}

func TestUCIDriveCoversAllAPs(t *testing.T) {
	sc := UCI()
	tr := UCIDrive()
	pts := tr.SampleByDistance(2)
	for i, ap := range sc.APs {
		best := math.Inf(1)
		for _, p := range pts {
			if d := p.Dist(ap); d < best {
				best = d
			}
		}
		if best > 30 {
			t.Fatalf("drive never comes within 30 m of AP %d (closest %.1f)", i, best)
		}
	}
	if !sc.Area.Contains(tr.Waypoints()[0]) {
		t.Fatal("drive starts outside the area")
	}
}

func TestValidateCatchesBadScenarios(t *testing.T) {
	good := UCI()
	cases := []struct {
		name   string
		mutate func(*Scenario)
	}{
		{"no APs", func(s *Scenario) { s.APs = nil }},
		{"bad area", func(s *Scenario) { s.Area = geo.Rect{} }},
		{"zero radius", func(s *Scenario) { s.Radius = 0 }},
		{"zero lattice", func(s *Scenario) { s.Lattice = 0 }},
		{"bad channel", func(s *Scenario) { s.Channel = radio.Channel{} }},
	}
	for _, c := range cases {
		sc := good
		c.mutate(&sc)
		if err := sc.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestRandomScenarioSeparation(t *testing.T) {
	r := rng.New(1)
	sc, err := RandomScenario("rand", 240, 10, 50, 8, radio.UCIChannel(), 100, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.APs) != 10 {
		t.Fatalf("APs = %d", len(sc.APs))
	}
	for i := 0; i < len(sc.APs); i++ {
		if math.Mod(sc.APs[i].X, 8) != 0 || math.Mod(sc.APs[i].Y, 8) != 0 {
			t.Fatalf("AP %d off-grid at %v", i, sc.APs[i])
		}
		for j := i + 1; j < len(sc.APs); j++ {
			if sc.APs[i].Dist(sc.APs[j]) < 50 {
				t.Fatalf("APs %d,%d violate separation", i, j)
			}
		}
	}
}

func TestRandomScenarioInfeasible(t *testing.T) {
	r := rng.New(2)
	// 100 APs at 200 m separation cannot fit in 240×240.
	if _, err := RandomScenario("bad", 240, 100, 200, 8, radio.UCIChannel(), 100, r); err == nil {
		t.Fatal("expected placement failure")
	}
	if _, err := RandomScenario("bad", 0, 1, 0, 8, radio.UCIChannel(), 100, r); err == nil {
		t.Fatal("expected parameter error")
	}
}

func TestDriveProducesLabelledMeasurements(t *testing.T) {
	sc := UCI()
	r := rng.New(3)
	ms, err := sc.Drive(DriveConfig{Trajectory: UCIDrive(), NumSamples: 100}, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 100 {
		t.Fatalf("measurements = %d, want 100 (all positions are in range)", len(ms))
	}
	for i, m := range ms {
		if m.Source < 0 || m.Source >= len(sc.APs) {
			t.Fatalf("measurement %d has source %d", i, m.Source)
		}
		if m.RSS > 0 || m.RSS < -150 {
			t.Fatalf("implausible RSS %v", m.RSS)
		}
		if i > 0 && m.Time <= ms[i-1].Time {
			t.Fatalf("timestamps not increasing at %d", i)
		}
	}
}

func TestDriveMyopicFavorsNearestAP(t *testing.T) {
	sc := UCI()
	r := rng.New(4)
	ms, err := sc.Drive(DriveConfig{Trajectory: UCIDrive(), NumSamples: 500, MyopicScale: 5}, r)
	if err != nil {
		t.Fatal(err)
	}
	nearest := 0
	for _, m := range ms {
		best := 0
		for j := range sc.APs {
			if m.Pos.Dist(sc.APs[j]) < m.Pos.Dist(sc.APs[best]) {
				best = j
			}
		}
		if m.Source == best {
			nearest++
		}
	}
	if frac := float64(nearest) / float64(len(ms)); frac < 0.6 {
		t.Fatalf("only %.0f%% of readings from the nearest AP; myopic model broken", frac*100)
	}
}

func TestDriveSNRInjectsNoise(t *testing.T) {
	sc := UCI()
	sc.Channel.ShadowSigma = 0
	clean, err := sc.Drive(DriveConfig{Trajectory: UCIDrive(), NumSamples: 50}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := sc.Drive(DriveConfig{Trajectory: UCIDrive(), NumSamples: 50, SNR: 30}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range clean {
		if clean[i].RSS != noisy[i].RSS {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("SNR setting did not perturb readings")
	}
}

func TestDriveErrors(t *testing.T) {
	sc := UCI()
	r := rng.New(6)
	if _, err := sc.Drive(DriveConfig{}, r); err == nil {
		t.Fatal("expected error without trajectory")
	}
	if _, err := sc.Drive(DriveConfig{Trajectory: UCIDrive(), NumSamples: 0}, r); err == nil {
		t.Fatal("expected error for zero samples")
	}
}

func TestDriveDeterministic(t *testing.T) {
	sc := UCI()
	a, err := sc.Drive(DriveConfig{Trajectory: UCIDrive(), NumSamples: 60, SNR: 30}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := sc.Drive(DriveConfig{Trajectory: UCIDrive(), NumSamples: 60, SNR: 30}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("drives diverge at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestCollectAtSkipsOutOfRange(t *testing.T) {
	sc := UCI()
	sc.Radius = 30
	r := rng.New(8)
	pts := []geo.Point{
		{X: 40, Y: 40},     // on an AP
		{X: -500, Y: -500}, // far outside
	}
	ms := sc.CollectAt(pts, 10, r)
	if len(ms) != 1 {
		t.Fatalf("measurements = %d, want 1 (out-of-range point skipped)", len(ms))
	}
}

func TestRandomPointsInArea(t *testing.T) {
	sc := UCI()
	r := rng.New(9)
	for _, p := range sc.RandomPoints(200, r) {
		if !sc.Area.Contains(p) {
			t.Fatalf("point %v outside area", p)
		}
	}
}

func TestUniformSourceSelection(t *testing.T) {
	// Negative myopic scale: uniform among in-range APs. Every AP audible
	// from the centre should be sampled roughly equally.
	sc := UCI()
	r := rng.New(20)
	center := geo.Point{X: 150, Y: 90}
	counts := map[int]int{}
	var audible int
	for _, ap := range sc.APs {
		if center.Dist(ap) <= sc.Radius {
			audible++
		}
	}
	if audible < 2 {
		t.Skip("test point hears too few APs")
	}
	pts := make([]geo.Point, 3000)
	for i := range pts {
		pts[i] = center
	}
	for _, m := range sc.CollectAt(pts, -1, r) {
		counts[m.Source]++
	}
	if len(counts) != audible {
		t.Fatalf("sampled %d distinct APs, want all %d audible", len(counts), audible)
	}
	for src, c := range counts {
		expected := 3000 / audible
		if c < expected/2 || c > expected*2 {
			t.Fatalf("AP %d sampled %d times, want ~%d (uniform)", src, c, expected)
		}
	}
}

func TestDriveSingleSample(t *testing.T) {
	sc := UCI()
	ms, err := sc.Drive(DriveConfig{Trajectory: UCIDrive(), NumSamples: 1}, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 {
		t.Fatalf("measurements = %d", len(ms))
	}
}
