// Package sim is the vehicular RSS simulator that replaces the paper's
// NCTUns v5.0 setup: scenarios describe an area, an AP deployment and a
// channel model; drives sample RSS measurements along a trajectory using the
// paper's myopic source model (each reading comes from a nearby AP with
// probability ∝ e^{−d}) and optional AWGN at a target SNR.
package sim

import (
	"errors"
	"fmt"
	"math"

	"crowdwifi/internal/geo"
	"crowdwifi/internal/radio"
	"crowdwifi/internal/rng"
)

// Scenario is a static world: map area, AP constellation, and radio
// parameters.
type Scenario struct {
	// Name labels the scenario in logs and bench output.
	Name string
	// Area is the map rectangle in metres.
	Area geo.Rect
	// APs are the true access point locations.
	APs []geo.Point
	// Channel is the propagation model.
	Channel radio.Channel
	// Radius is the effective AP transmission radius; readings are only
	// generated from APs within this range.
	Radius float64
	// Lattice is the evaluation grid cell length.
	Lattice float64
}

// Validate checks scenario consistency.
func (s Scenario) Validate() error {
	if len(s.APs) == 0 {
		return errors.New("sim: scenario has no APs")
	}
	if s.Area.Width() <= 0 || s.Area.Height() <= 0 {
		return errors.New("sim: degenerate area")
	}
	if s.Radius <= 0 || s.Lattice <= 0 {
		return errors.New("sim: radius and lattice must be positive")
	}
	return s.Channel.Validate()
}

// UCI returns the paper's first simulation scenario: the UCI campus map
// scaled to a 300 m × 180 m rectangle with 8 APs at least 50 m apart, an
// effective transmission radius of 100 m, path loss 45.6 dB at 1 m, exponent
// 1.76, and shadow fading σ = 0.5 dB. APs sit exactly on 8 m grid points, as
// in the paper's first experiment.
func UCI() Scenario {
	return Scenario{
		Name: "uci",
		Area: geo.NewRect(geo.Point{X: 0, Y: 0}, geo.Point{X: 304, Y: 184}),
		APs: []geo.Point{
			{X: 40, Y: 40},
			{X: 120, Y: 32},
			{X: 208, Y: 40},
			{X: 272, Y: 88},
			{X: 216, Y: 144},
			{X: 144, Y: 152},
			{X: 64, Y: 144},
			{X: 152, Y: 88},
		},
		Channel: radio.UCIChannel(),
		Radius:  100,
		Lattice: 8,
	}
}

// UCIDrive returns the winding collection route used for the Fig. 5
// reproduction. Like the paper's Fig. 5(a) drive, it snakes through campus
// and approaches every AP, with turns that break the collinear mirror
// ambiguity of straight-segment RSS collection.
func UCIDrive() *geo.Trajectory {
	t, err := geo.NewTrajectory([]geo.Point{
		{X: 8, Y: 8},
		{X: 36, Y: 28},
		{X: 110, Y: 24},
		{X: 128, Y: 44},
		{X: 204, Y: 28},
		{X: 232, Y: 52},
		{X: 266, Y: 78},
		{X: 258, Y: 108},
		{X: 224, Y: 134},
		{X: 196, Y: 150},
		{X: 152, Y: 142},
		{X: 146, Y: 104},
		{X: 160, Y: 82},
		{X: 120, Y: 96},
		{X: 76, Y: 136},
		{X: 48, Y: 152},
		{X: 28, Y: 120},
		{X: 48, Y: 52},
	})
	if err != nil {
		// The waypoint list is a compile-time constant; failure is a bug.
		panic(fmt.Sprintf("sim: invalid UCI drive: %v", err))
	}
	return t
}

// RandomScenario places k APs uniformly in a square area with a minimum
// pairwise separation, on grid points of the given lattice. It reproduces
// the paper's second and third simulation setups (random AP deployments on
// the grid structure). Placement uses rejection sampling; it returns an
// error if the separation constraint cannot be met in a bounded number of
// attempts.
func RandomScenario(name string, side float64, k int, minSep, lattice float64, ch radio.Channel, radius float64, r *rng.RNG) (Scenario, error) {
	if k <= 0 || side <= 0 || lattice <= 0 {
		return Scenario{}, errors.New("sim: invalid random scenario parameters")
	}
	cols := int(side/lattice) + 1
	aps := make([]geo.Point, 0, k)
	const maxAttempts = 100000
	attempts := 0
	for len(aps) < k {
		if attempts++; attempts > maxAttempts {
			return Scenario{}, fmt.Errorf("sim: cannot place %d APs with separation %.1f in %.0fx%.0f", k, minSep, side, side)
		}
		p := geo.Point{
			X: float64(r.Intn(cols)) * lattice,
			Y: float64(r.Intn(cols)) * lattice,
		}
		ok := true
		for _, q := range aps {
			if p.Dist(q) < minSep {
				ok = false
				break
			}
		}
		if ok {
			aps = append(aps, p)
		}
	}
	return Scenario{
		Name:    name,
		Area:    geo.NewRect(geo.Point{X: 0, Y: 0}, geo.Point{X: side, Y: side}),
		APs:     aps,
		Channel: ch,
		Radius:  radius,
		Lattice: lattice,
	}, nil
}

// DriveConfig configures one RSS collection run.
type DriveConfig struct {
	// Trajectory is the vehicle's route.
	Trajectory *geo.Trajectory
	// NumSamples is the number of RSS readings collected, spaced evenly in
	// arc length along the trajectory.
	NumSamples int
	// SNR, when positive, adds white Gaussian noise to the whole RSS vector
	// at this signal-to-noise ratio in dB (the paper's robustness setting is
	// 30 dB).
	SNR float64
	// MyopicScale is the length scale (metres) of the myopic source weights
	// w ∝ e^{−d/scale} (default 10). Smaller values make the nearest AP
	// dominate; a negative value selects uniformly among in-range APs.
	MyopicScale float64
	// SampleInterval is the simulated time between consecutive readings in
	// seconds (default 1).
	SampleInterval float64
}

// Drive collects RSS measurements along the trajectory. Each reading is
// attributed to one AP drawn with myopic probability among the APs within
// the scenario radius, and its RSS follows the log-distance model with
// shadow fading. Readings at positions with no AP in range are skipped, so
// fewer than NumSamples measurements may be returned.
func (s Scenario) Drive(cfg DriveConfig, r *rng.RNG) ([]radio.Measurement, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if cfg.Trajectory == nil || cfg.NumSamples <= 0 {
		return nil, errors.New("sim: drive requires a trajectory and a positive sample count")
	}
	scale := cfg.MyopicScale
	if scale == 0 {
		scale = 10
	}
	dt := cfg.SampleInterval
	if dt <= 0 {
		dt = 1
	}
	total := cfg.Trajectory.Length()
	step := total / float64(cfg.NumSamples-1)
	if cfg.NumSamples == 1 {
		step = 0
	}

	ms := make([]radio.Measurement, 0, cfg.NumSamples)
	for i := 0; i < cfg.NumSamples; i++ {
		pos := cfg.Trajectory.At(float64(i) * step)
		src, ok := s.pickSource(pos, scale, r)
		if !ok {
			continue
		}
		ms = append(ms, radio.Measurement{
			Pos:    pos,
			RSS:    s.Channel.SampleRSS(pos.Dist(s.APs[src]), r),
			Time:   float64(i) * dt,
			Source: src,
		})
	}
	if cfg.SNR > 0 {
		y := make([]float64, len(ms))
		for i, m := range ms {
			y[i] = m.RSS
		}
		y = radio.AddAWGN(y, cfg.SNR, r)
		for i := range ms {
			ms[i].RSS = y[i]
		}
	}
	return ms, nil
}

// CollectAt generates one myopic RSS reading per reference point, skipping
// points with no AP in range. It reproduces the scattered-RP measurement
// model of the paper's Fig. 3 / Fig. 8 experiments.
func (s Scenario) CollectAt(points []geo.Point, myopicScale float64, r *rng.RNG) []radio.Measurement {
	if myopicScale == 0 {
		myopicScale = 10
	}
	ms := make([]radio.Measurement, 0, len(points))
	for i, pos := range points {
		src, ok := s.pickSource(pos, myopicScale, r)
		if !ok {
			continue
		}
		ms = append(ms, radio.Measurement{
			Pos:    pos,
			RSS:    s.Channel.SampleRSS(pos.Dist(s.APs[src]), r),
			Time:   float64(i),
			Source: src,
		})
	}
	return ms
}

// RandomPoints draws n uniform positions inside the scenario area.
func (s Scenario) RandomPoints(n int, r *rng.RNG) []geo.Point {
	out := make([]geo.Point, n)
	for i := range out {
		out[i] = geo.Point{
			X: r.Uniform(s.Area.Min.X, s.Area.Max.X),
			Y: r.Uniform(s.Area.Min.Y, s.Area.Max.Y),
		}
	}
	return out
}

// pickSource draws the transmitting AP for a reading at pos using myopic
// weights w ∝ e^{−d/scale} over APs within the scenario radius; a negative
// scale selects uniformly among in-range APs (a channel-scanning collector
// that logs whichever beacon arrives). The second return value is false when
// no AP is in range.
func (s Scenario) pickSource(pos geo.Point, scale float64, r *rng.RNG) (int, bool) {
	if scale < 0 {
		var audible []int
		for j, ap := range s.APs {
			if pos.Dist(ap) <= s.Radius {
				audible = append(audible, j)
			}
		}
		if len(audible) == 0 {
			return 0, false
		}
		return audible[r.Intn(len(audible))], true
	}
	weights := make([]float64, len(s.APs))
	var total float64
	minD := math.Inf(1)
	for _, ap := range s.APs {
		if d := pos.Dist(ap); d < minD {
			minD = d
		}
	}
	if minD > s.Radius {
		return 0, false
	}
	for j, ap := range s.APs {
		d := pos.Dist(ap)
		if d > s.Radius {
			continue
		}
		// Shift by minD before exponentiating to avoid underflow.
		weights[j] = math.Exp(-(d - minD) / scale)
		total += weights[j]
	}
	u := r.Float64() * total
	for j, w := range weights {
		if w == 0 {
			continue
		}
		if u < w {
			return j, true
		}
		u -= w
	}
	// Floating point slack: fall back to the nearest AP.
	best := 0
	for j, ap := range s.APs {
		if pos.Dist(ap) < pos.Dist(s.APs[best]) {
			best = j
		}
	}
	return best, true
}
