package radio

import (
	"math"
	"testing"
	"testing/quick"

	"crowdwifi/internal/geo"
	"crowdwifi/internal/rng"
)

func TestUCIChannelParameters(t *testing.T) {
	c := UCIChannel()
	if c.RefLoss != 45.6 || c.Exponent != 1.76 || c.ShadowSigma != 0.5 || c.RefDist != 1 {
		t.Fatalf("UCIChannel = %+v does not match the paper", c)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidate(t *testing.T) {
	bad := []Channel{
		{RefDist: 0, Exponent: 2},
		{RefDist: 1, Exponent: 0},
		{RefDist: 1, Exponent: 2, ShadowSigma: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected validation error for %+v", i, c)
		}
	}
}

func TestMeanRSSMonotoneDecreasing(t *testing.T) {
	c := UCIChannel()
	prev := c.MeanRSS(1)
	for d := 2.0; d <= 200; d += 1 {
		cur := c.MeanRSS(d)
		if cur >= prev {
			t.Fatalf("RSS not decreasing at d=%v: %v >= %v", d, cur, prev)
		}
		prev = cur
	}
}

func TestMeanRSSReferencePoint(t *testing.T) {
	c := UCIChannel()
	// At the reference distance the RSS is exactly t − l₀.
	if got, want := c.MeanRSS(1), 20.0-45.6; math.Abs(got-want) > 1e-12 {
		t.Fatalf("MeanRSS(1) = %v, want %v", got, want)
	}
	// Below the reference distance the model clamps.
	if c.MeanRSS(0.1) != c.MeanRSS(1) {
		t.Fatal("no clamping below reference distance")
	}
}

func TestInvertRSSRoundTrip(t *testing.T) {
	c := UCIChannel()
	f := func(dRaw float64) bool {
		if math.IsNaN(dRaw) || math.IsInf(dRaw, 0) {
			return true
		}
		d := 1 + math.Mod(math.Abs(dRaw), 500)
		rss := c.MeanRSS(d)
		back := c.InvertRSS(rss)
		return math.Abs(back-d) < 1e-6*d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleRSSStatistics(t *testing.T) {
	c := UCIChannel()
	r := rng.New(1)
	const n = 50000
	d := 50.0
	mean := c.MeanRSS(d)
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := c.SampleRSS(d, r)
		sum += v
		sumSq += v * v
	}
	m := sum / n
	sd := math.Sqrt(sumSq/n - m*m)
	if math.Abs(m-mean) > 0.02 {
		t.Fatalf("sample mean %v, want %v", m, mean)
	}
	if math.Abs(sd-c.ShadowSigma) > 0.02 {
		t.Fatalf("sample stddev %v, want %v", sd, c.ShadowSigma)
	}
}

func TestSampleRSSNoFading(t *testing.T) {
	c := UCIChannel()
	c.ShadowSigma = 0
	r := rng.New(2)
	if c.SampleRSS(10, r) != c.MeanRSS(10) {
		t.Fatal("zero shadow sigma must be deterministic")
	}
}

func TestAddAWGNSNR(t *testing.T) {
	r := rng.New(3)
	y := make([]float64, 20000)
	for i := range y {
		y[i] = -60 + 10*math.Sin(float64(i)) // signal with known power
	}
	var sigPow float64
	for _, v := range y {
		sigPow += v * v
	}
	sigPow /= float64(len(y))

	noisy := AddAWGN(y, 30, r)
	var noisePow float64
	for i := range y {
		d := noisy[i] - y[i]
		noisePow += d * d
	}
	noisePow /= float64(len(y))
	gotSNR := 10 * math.Log10(sigPow/noisePow)
	if math.Abs(gotSNR-30) > 0.5 {
		t.Fatalf("achieved SNR %v dB, want ~30", gotSNR)
	}
}

func TestAddAWGNEmpty(t *testing.T) {
	if out := AddAWGN(nil, 30, rng.New(1)); out != nil {
		t.Fatal("AddAWGN(nil) should return nil")
	}
}

func TestLogLikelihoodPrefersTrueConstellation(t *testing.T) {
	c := UCIChannel()
	c.ShadowSigma = 0
	r := rng.New(4)
	trueAPs := []geo.Point{{X: 20, Y: 20}, {X: 80, Y: 60}}
	// Collect measurements along a diagonal drive; each reading comes from
	// the nearest AP (the myopic assumption of Eq. 1).
	var ms []Measurement
	for i := 0; i < 40; i++ {
		pos := geo.Point{X: float64(i * 2), Y: float64(i * 2)}
		near := trueAPs[0]
		if pos.Dist(trueAPs[1]) < pos.Dist(trueAPs[0]) {
			near = trueAPs[1]
		}
		ms = append(ms, Measurement{Pos: pos, RSS: c.SampleRSS(pos.Dist(near), r)})
	}
	g := GMMParams{Channel: c}
	llTrue := g.LogLikelihood(ms, trueAPs)
	llWrong := g.LogLikelihood(ms, []geo.Point{{X: 0, Y: 90}, {X: 90, Y: 0}})
	if llTrue <= llWrong {
		t.Fatalf("true constellation LL %v <= wrong %v", llTrue, llWrong)
	}
}

func TestLogLikelihoodEmptyAPs(t *testing.T) {
	g := GMMParams{Channel: UCIChannel()}
	if ll := g.LogLikelihood([]Measurement{{RSS: -60}}, nil); !math.IsInf(ll, -1) {
		t.Fatalf("LL with no APs = %v, want -Inf", ll)
	}
}

func TestLogLikelihoodFinite(t *testing.T) {
	// Even absurd placements must yield a finite log-likelihood (underflow
	// guard), or BIC comparisons break.
	g := GMMParams{Channel: UCIChannel()}
	ms := []Measurement{{Pos: geo.Point{X: 0, Y: 0}, RSS: -30}}
	ll := g.LogLikelihood(ms, []geo.Point{{X: 1e6, Y: 1e6}})
	if math.IsInf(ll, 0) || math.IsNaN(ll) {
		t.Fatalf("LL = %v, want finite", ll)
	}
}

func TestBICPenalizesModelOrder(t *testing.T) {
	// Same likelihood, more parameters → lower BIC.
	if BIC(-100, 3, 50) >= BIC(-100, 2, 50) {
		t.Fatal("BIC must penalize extra APs")
	}
	// Higher likelihood with same order → higher BIC.
	if BIC(-90, 2, 50) <= BIC(-100, 2, 50) {
		t.Fatal("BIC must reward likelihood")
	}
	if !math.IsInf(BIC(-1, 1, 0), -1) {
		t.Fatal("BIC with no samples must be -Inf")
	}
}

func TestBICFormula(t *testing.T) {
	// BIC = 2·LL − 2K·log(m).
	got := BIC(-50, 4, 100)
	want := 2*(-50) - float64(2*4)*math.Log(100)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("BIC = %v, want %v", got, want)
	}
}
