// Package radio implements CrowdWiFi's channel model (Section 4.2.1): the
// log-distance path loss model with log-normal shadow fading, AWGN at a
// target SNR, RSS↔distance inversion, and the Gaussian mixture likelihood of
// an RSS series given a candidate AP constellation (Eq. 1).
package radio

import (
	"errors"
	"math"

	"crowdwifi/internal/geo"
	"crowdwifi/internal/rng"
)

// Channel is a log-distance path loss channel:
//
//	r = t − l₀ − 10·γ·log₁₀(d/d₀) − S,  d ≥ d₀
//
// where t is the transmit power (dBm), l₀ the path loss at reference
// distance d₀, γ the path loss exponent and S log-normal shadow fading (dB).
type Channel struct {
	// TxPower is the transmitted signal power t in dBm.
	TxPower float64
	// RefLoss is the path loss l₀ in dB at the reference distance.
	RefLoss float64
	// RefDist is the reference distance d₀ in metres (usually 1 m).
	RefDist float64
	// Exponent is the path loss exponent γ.
	Exponent float64
	// ShadowSigma is the standard deviation of the log-normal shadow fading
	// in dB. Zero disables fading.
	ShadowSigma float64
}

// UCIChannel returns the channel used in the paper's UCI simulations:
// path loss 45.6 dB at 1 m, exponent 1.76, shadow σ 0.5 dB. The transmit
// power is a free parameter in the paper; 20 dBm (100 mW, a typical consumer
// AP) is used throughout this reproduction.
func UCIChannel() Channel {
	return Channel{
		TxPower:     20,
		RefLoss:     45.6,
		RefDist:     1,
		Exponent:    1.76,
		ShadowSigma: 0.5,
	}
}

// ErrBadChannel reports invalid channel parameters.
var ErrBadChannel = errors.New("radio: invalid channel parameters")

// Validate checks the channel parameters.
func (c Channel) Validate() error {
	if c.RefDist <= 0 || c.Exponent <= 0 || c.ShadowSigma < 0 {
		return ErrBadChannel
	}
	return nil
}

// MeanRSS returns the expected received power (dBm) at distance d metres,
// i.e. the channel without the fading term. Distances below the reference
// distance are clamped to it, matching the model's validity range d ≥ d₀.
func (c Channel) MeanRSS(d float64) float64 {
	if d < c.RefDist {
		d = c.RefDist
	}
	return c.TxPower - c.RefLoss - 10*c.Exponent*math.Log10(d/c.RefDist)
}

// SampleRSS returns a faded RSS sample at distance d, drawing the shadowing
// term from r.
func (c Channel) SampleRSS(d float64, r *rng.RNG) float64 {
	rss := c.MeanRSS(d)
	if c.ShadowSigma > 0 {
		rss -= r.Normal(0, c.ShadowSigma)
	}
	return rss
}

// InvertRSS returns the distance at which the mean RSS equals rss. It is the
// inverse of MeanRSS and is exact in the absence of fading.
func (c Channel) InvertRSS(rss float64) float64 {
	exp := (c.TxPower - c.RefLoss - rss) / (10 * c.Exponent)
	d := c.RefDist * math.Pow(10, exp)
	if d < c.RefDist {
		return c.RefDist
	}
	return d
}

// AddAWGN adds white Gaussian noise to y to reach the requested SNR in dB,
// following the paper's robustness experiments ("we intentionally add
// Gaussian white noise to the observation vector y ... SNR=30dB"). The noise
// power is set relative to the mean signal power of y.
func AddAWGN(y []float64, snrDB float64, r *rng.RNG) []float64 {
	if len(y) == 0 {
		return nil
	}
	var power float64
	for _, v := range y {
		power += v * v
	}
	power /= float64(len(y))
	sigma := math.Sqrt(power / math.Pow(10, snrDB/10))
	out := make([]float64, len(y))
	for i, v := range y {
		out[i] = v + r.Normal(0, sigma)
	}
	return out
}

// Measurement is one drive-by RSS reading tagged with the collector location.
type Measurement struct {
	// Pos is the GPS position of the RSS collector when the reading was taken.
	Pos geo.Point
	// RSS is the received signal strength in dBm.
	RSS float64
	// Time is the collection time in seconds from the start of the drive.
	Time float64
	// Source is the index of the transmitting AP when known (BSSID-labelled
	// scans, available to fingerprinting baselines like Skyhook and MDS), or
	// -1 when unknown. CrowdWiFi's CS pipeline never reads it.
	Source int
}

// GMMParams configures the mixture likelihood of Eq. 1.
type GMMParams struct {
	// Channel supplies μᵢⱼ via the path loss model.
	Channel Channel
	// SigmaFactor is the constant b in σᵢⱼ = b·|μᵢⱼ| (the paper sets
	// σᵢⱼ = b·μᵢⱼ; the magnitude keeps σ positive for negative dBm means).
	SigmaFactor float64
	// WeightScale is the length scale (metres) of the myopic mixture weights
	// wᵢⱼ ∝ e^{−dᵢⱼ/scale} (default DefaultWeightScale). It should match the
	// source diversity of the collector: small when readings come almost
	// exclusively from the nearest AP, larger when the collector interleaves
	// beacons from all audible APs.
	WeightScale float64
}

// DefaultWeightScale is the myopic weight length scale used when
// GMMParams.WeightScale is 0.
const DefaultWeightScale = 10.0

// DefaultSigmaFactor is the b constant used when GMMParams.SigmaFactor is 0.
const DefaultSigmaFactor = 0.05

// LogLikelihood evaluates log p(R) of Eq. 1: the probability that the RSS
// measurement series came from the mixture of the candidate APs, with myopic
// distance weights wᵢⱼ = e^{−dᵢⱼ} / Σ e^{−dᵢⱼ'} favouring nearby APs.
// It returns -Inf when aps is empty.
func (g GMMParams) LogLikelihood(measurements []Measurement, aps []geo.Point) float64 {
	if len(aps) == 0 {
		return math.Inf(-1)
	}
	b := g.SigmaFactor
	if b == 0 {
		b = DefaultSigmaFactor
	}
	var ll float64
	for _, m := range measurements {
		// Myopic weights over APs for this measurement point. Distances are
		// scaled by their minimum before exponentiation so that e^{−d} does
		// not underflow on maps hundreds of metres wide.
		dists := make([]float64, len(aps))
		minD := math.Inf(1)
		for j, ap := range aps {
			dists[j] = m.Pos.Dist(ap)
			if dists[j] < minD {
				minD = dists[j]
			}
		}
		scale := g.WeightScale
		if scale <= 0 {
			scale = DefaultWeightScale
		}
		var wsum float64
		weights := make([]float64, len(aps))
		for j, d := range dists {
			weights[j] = math.Exp(-(d - minD) / scale)
			wsum += weights[j]
		}
		var p float64
		for j, ap := range aps {
			mu := g.Channel.MeanRSS(m.Pos.Dist(ap))
			sigma := b * math.Abs(mu)
			if sigma < 1e-6 {
				sigma = 1e-6
			}
			w := weights[j] / wsum
			z := (m.RSS - mu) / sigma
			p += w * math.Exp(-0.5*z*z) / (sigma * math.Sqrt(2*math.Pi))
		}
		if p < 1e-300 {
			p = 1e-300
		}
		ll += math.Log(p)
	}
	return ll
}

// BIC computes the Bayesian information criterion of Section 4.3.5:
//
//	BIC = 2·logLik − v·log(m)
//
// with v = 2K free parameters (the 2-D coordinates of K APs) and m data
// samples. Larger is better.
func BIC(logLik float64, numAPs, numSamples int) float64 {
	if numSamples <= 0 {
		return math.Inf(-1)
	}
	v := float64(2 * numAPs)
	return 2*logLik - v*math.Log(float64(numSamples))
}
