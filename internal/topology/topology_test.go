package topology

import (
	"math"
	"testing"
	"testing/quick"

	"crowdwifi/internal/geo"
	"crowdwifi/internal/rng"
)

func line(n int, spacing float64) []geo.Point {
	out := make([]geo.Point, n)
	for i := range out {
		out[i] = geo.Point{X: float64(i) * spacing, Y: 0}
	}
	return out
}

func TestBuildGraphEdges(t *testing.T) {
	// Three APs in a line, 50 m apart, range 60: chain edges only.
	g, err := BuildGraph(line(3, 50), 60)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{1}, {0, 2}, {1}}
	for i := range want {
		if len(g.Adj[i]) != len(want[i]) {
			t.Fatalf("Adj[%d] = %v, want %v", i, g.Adj[i], want[i])
		}
		for j := range want[i] {
			if g.Adj[i][j] != want[i][j] {
				t.Fatalf("Adj[%d] = %v, want %v", i, g.Adj[i], want[i])
			}
		}
	}
	if g.MeanDegree() != 4.0/3 {
		t.Fatalf("mean degree = %v", g.MeanDegree())
	}
	degrees := g.Degrees()
	if degrees[1] != 2 {
		t.Fatalf("degrees = %v", degrees)
	}
}

func TestBuildGraphErrors(t *testing.T) {
	if _, err := BuildGraph(line(2, 10), 0); err == nil {
		t.Fatal("expected range error")
	}
}

func TestComponents(t *testing.T) {
	// Two clusters far apart.
	aps := append(line(3, 40), geo.Point{X: 1000, Y: 0}, geo.Point{X: 1030, Y: 0})
	g, err := BuildGraph(aps, 60)
	if err != nil {
		t.Fatal(err)
	}
	comps := g.Components()
	if len(comps) != 2 {
		t.Fatalf("components = %v", comps)
	}
	if len(comps[0]) != 3 || len(comps[1]) != 2 {
		t.Fatalf("component sizes = %d/%d", len(comps[0]), len(comps[1]))
	}
}

func TestComponentsSingletons(t *testing.T) {
	g, err := BuildGraph(line(4, 1000), 60)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(g.Components()); got != 4 {
		t.Fatalf("components = %d, want 4 singletons", got)
	}
}

func TestAssignChannelsChain(t *testing.T) {
	// A chain is 2-colourable: zero conflicts with 2+ channels.
	g, err := BuildGraph(line(6, 50), 60)
	if err != nil {
		t.Fatal(err)
	}
	assign, conflicts, err := g.AssignChannels(2)
	if err != nil {
		t.Fatal(err)
	}
	if conflicts != 0 {
		t.Fatalf("conflicts = %d, want 0", conflicts)
	}
	for i := 1; i < len(assign); i++ {
		if assign[i] == assign[i-1] {
			t.Fatalf("adjacent APs share channel: %v", assign)
		}
	}
}

func TestAssignChannelsSingleChannel(t *testing.T) {
	g, err := BuildGraph(line(3, 50), 60)
	if err != nil {
		t.Fatal(err)
	}
	_, conflicts, err := g.AssignChannels(1)
	if err != nil {
		t.Fatal(err)
	}
	if conflicts != 2 {
		t.Fatalf("single-channel conflicts = %d, want 2 (every edge)", conflicts)
	}
	if _, _, err := g.AssignChannels(0); err == nil {
		t.Fatal("expected channel-count error")
	}
}

func TestAssignChannelsValidProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 3 + int(seed%20)
		aps := make([]geo.Point, n)
		for i := range aps {
			aps[i] = geo.Point{X: r.Uniform(0, 300), Y: r.Uniform(0, 300)}
		}
		g, err := BuildGraph(aps, 80)
		if err != nil {
			return false
		}
		assign, conflicts, err := g.AssignChannels(3)
		if err != nil {
			return false
		}
		// Channels in range, conflicts consistent with the assignment.
		recount := 0
		for v, ns := range g.Adj {
			if assign[v] < 0 || assign[v] >= 3 {
				return false
			}
			for _, w := range ns {
				if w > v && assign[v] == assign[w] {
					recount++
				}
			}
		}
		return recount == conflicts
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCoverageFullAndEmpty(t *testing.T) {
	area := geo.NewRect(geo.Point{X: 0, Y: 0}, geo.Point{X: 100, Y: 100})
	// One central AP with a huge range covers everything.
	rep, err := Coverage([]geo.Point{{X: 50, Y: 50}}, area, 200, 10)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CoveredFraction != 1 {
		t.Fatalf("covered = %v, want 1", rep.CoveredFraction)
	}
	if rep.DensityPerKm2 != 100 { // 1 AP / 0.01 km²
		t.Fatalf("density = %v, want 100", rep.DensityPerKm2)
	}
	// No APs: nothing covered, infinite nearest distance.
	rep, err = Coverage(nil, area, 50, 10)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CoveredFraction != 0 {
		t.Fatalf("covered = %v, want 0", rep.CoveredFraction)
	}
	if !math.IsInf(rep.MeanNearestAPDist, 1) {
		t.Fatalf("nearest dist = %v, want +Inf", rep.MeanNearestAPDist)
	}
}

func TestCoveragePartial(t *testing.T) {
	area := geo.NewRect(geo.Point{X: 0, Y: 0}, geo.Point{X: 100, Y: 100})
	rep, err := Coverage([]geo.Point{{X: 0, Y: 0}}, area, 50, 5)
	if err != nil {
		t.Fatal(err)
	}
	// A quarter disk of radius 50 covers ~π·50²/4 / 10⁴ ≈ 19.6%.
	if rep.CoveredFraction < 0.15 || rep.CoveredFraction > 0.25 {
		t.Fatalf("covered = %v, want ≈ 0.196", rep.CoveredFraction)
	}
	if rep.MeanNearestAPDist <= 0 {
		t.Fatalf("nearest dist = %v", rep.MeanNearestAPDist)
	}
}

func TestCoverageErrors(t *testing.T) {
	area := geo.NewRect(geo.Point{X: 0, Y: 0}, geo.Point{X: 10, Y: 10})
	if _, err := Coverage(nil, area, 0, 5); err == nil {
		t.Fatal("expected service range error")
	}
	if _, err := Coverage(nil, geo.Rect{}, 10, 5); err == nil {
		t.Fatal("expected degenerate area error")
	}
}

func TestCoverageMoreAPsCoverMore(t *testing.T) {
	area := geo.NewRect(geo.Point{X: 0, Y: 0}, geo.Point{X: 200, Y: 200})
	one, err := Coverage([]geo.Point{{X: 50, Y: 50}}, area, 60, 5)
	if err != nil {
		t.Fatal(err)
	}
	two, err := Coverage([]geo.Point{{X: 50, Y: 50}, {X: 150, Y: 150}}, area, 60, 5)
	if err != nil {
		t.Fatal(err)
	}
	if two.CoveredFraction <= one.CoveredFraction {
		t.Fatalf("adding an AP did not increase coverage: %v vs %v",
			two.CoveredFraction, one.CoveredFraction)
	}
	if two.MeanNearestAPDist >= one.MeanNearestAPDist {
		t.Fatal("adding an AP did not reduce mean nearest distance")
	}
}
