// Package topology implements the WiFi topology analysis service the paper
// lists among CrowdWiFi's middleware applications (Fig. 1): given the
// crowdsensed AP database, it derives the deployment's network density,
// coverage, connectivity, and interference structure, and proposes a channel
// assignment that minimizes co-channel interference (greedy graph coloring
// over the 2.4 GHz non-overlapping channels).
package topology

import (
	"errors"
	"math"
	"sort"

	"crowdwifi/internal/geo"
)

// Graph is the interference graph over a crowdsensed AP deployment: APs are
// vertices; an edge connects APs whose coverage disks overlap (distance
// below the interference range).
type Graph struct {
	// APs are the analyzed AP positions.
	APs []geo.Point
	// Range is the interference range used to build the edges.
	Range float64
	// Adj is the adjacency list (sorted neighbour indices).
	Adj [][]int
}

// BuildGraph constructs the interference graph for APs with the given
// interference range (typically twice the usable association range, since
// two transmitters interfere well beyond where they can serve clients).
func BuildGraph(aps []geo.Point, interferenceRange float64) (*Graph, error) {
	if interferenceRange <= 0 {
		return nil, errors.New("topology: interference range must be positive")
	}
	g := &Graph{
		APs:   append([]geo.Point(nil), aps...),
		Range: interferenceRange,
		Adj:   make([][]int, len(aps)),
	}
	for i := 0; i < len(aps); i++ {
		for j := i + 1; j < len(aps); j++ {
			if aps[i].Dist(aps[j]) <= interferenceRange {
				g.Adj[i] = append(g.Adj[i], j)
				g.Adj[j] = append(g.Adj[j], i)
			}
		}
	}
	for i := range g.Adj {
		sort.Ints(g.Adj[i])
	}
	return g, nil
}

// Degrees returns the per-AP neighbour counts.
func (g *Graph) Degrees() []int {
	out := make([]int, len(g.Adj))
	for i, n := range g.Adj {
		out[i] = len(n)
	}
	return out
}

// MeanDegree is the average interference degree — the paper's "interference
// properties" summary statistic.
func (g *Graph) MeanDegree() float64 {
	if len(g.Adj) == 0 {
		return 0
	}
	total := 0
	for _, n := range g.Adj {
		total += len(n)
	}
	return float64(total) / float64(len(g.Adj))
}

// Components returns the connected components of the interference graph,
// each a sorted list of AP indices, ordered by size descending (ties by
// first index). A fragmented deployment (many components) indicates coverage
// holes between AP clusters.
func (g *Graph) Components() [][]int {
	seen := make([]bool, len(g.Adj))
	var comps [][]int
	for start := range g.Adj {
		if seen[start] {
			continue
		}
		var comp []int
		stack := []int{start}
		seen[start] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, v)
			for _, w := range g.Adj[v] {
				if !seen[w] {
					seen[w] = true
					stack = append(stack, w)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	sort.Slice(comps, func(a, b int) bool {
		if len(comps[a]) != len(comps[b]) {
			return len(comps[a]) > len(comps[b])
		}
		return comps[a][0] < comps[b][0]
	})
	return comps
}

// AssignChannels greedily colours the interference graph with the given
// number of channels (use 3 for the classic 2.4 GHz channels 1/6/11),
// processing APs in descending degree order and picking for each the
// channel least used among its already-coloured neighbours. It returns the
// per-AP channel (0-based) and the number of conflicting edges remaining
// (edges whose endpoints share a channel) — zero when the graph is
// channels-colourable by the greedy order.
func (g *Graph) AssignChannels(channels int) ([]int, int, error) {
	if channels <= 0 {
		return nil, 0, errors.New("topology: need at least one channel")
	}
	n := len(g.Adj)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		da, db := len(g.Adj[order[a]]), len(g.Adj[order[b]])
		if da != db {
			return da > db
		}
		return order[a] < order[b]
	})
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	counts := make([]int, channels)
	for _, v := range order {
		for c := range counts {
			counts[c] = 0
		}
		for _, w := range g.Adj[v] {
			if assign[w] >= 0 {
				counts[assign[w]]++
			}
		}
		best := 0
		for c := 1; c < channels; c++ {
			if counts[c] < counts[best] {
				best = c
			}
		}
		assign[v] = best
	}
	conflicts := 0
	for v, ns := range g.Adj {
		for _, w := range ns {
			if w > v && assign[v] == assign[w] {
				conflicts++
			}
		}
	}
	return assign, conflicts, nil
}

// CoverageReport summarizes a deployment's spatial coverage.
type CoverageReport struct {
	// Area is the analyzed rectangle.
	Area geo.Rect
	// ServiceRange is the per-AP usable radius used for the estimate.
	ServiceRange float64
	// CoveredFraction is the Monte-Carlo-free grid estimate of the area
	// fraction within ServiceRange of at least one AP.
	CoveredFraction float64
	// DensityPerKm2 is APs per square kilometre.
	DensityPerKm2 float64
	// MeanNearestAPDist is the mean distance from a grid sample to its
	// nearest AP.
	MeanNearestAPDist float64
}

// Coverage rasterizes the area at the given resolution (metres per sample)
// and reports covered fraction, AP density, and mean nearest-AP distance —
// the paper's "network density, connectivity" analyses.
func Coverage(aps []geo.Point, area geo.Rect, serviceRange, resolution float64) (*CoverageReport, error) {
	if serviceRange <= 0 || resolution <= 0 {
		return nil, errors.New("topology: service range and resolution must be positive")
	}
	if area.Width() <= 0 || area.Height() <= 0 {
		return nil, errors.New("topology: degenerate area")
	}
	var covered, samples int
	var distSum float64
	for y := area.Min.Y; y <= area.Max.Y; y += resolution {
		for x := area.Min.X; x <= area.Max.X; x += resolution {
			p := geo.Point{X: x, Y: y}
			samples++
			nearest := math.Inf(1)
			for _, ap := range aps {
				if d := p.Dist(ap); d < nearest {
					nearest = d
				}
			}
			if nearest <= serviceRange {
				covered++
			}
			if !math.IsInf(nearest, 1) {
				distSum += nearest
			}
		}
	}
	areaKm2 := area.Width() * area.Height() / 1e6
	rep := &CoverageReport{
		Area:         area,
		ServiceRange: serviceRange,
	}
	if samples > 0 {
		rep.CoveredFraction = float64(covered) / float64(samples)
		if len(aps) > 0 {
			rep.MeanNearestAPDist = distSum / float64(samples)
		} else {
			rep.MeanNearestAPDist = math.Inf(1)
		}
	}
	if areaKm2 > 0 {
		rep.DensityPerKm2 = float64(len(aps)) / areaKm2
	}
	return rep, nil
}
