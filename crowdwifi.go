// Package crowdwifi is a from-scratch reproduction of "CrowdWiFi: Efficient
// Crowdsensing of Roadside WiFi Networks" (ACM Middleware 2014): a vehicular
// middleware that identifies and localizes roadside WiFi access points.
//
// The library has two halves, mirroring the paper:
//
//   - Online compressive sensing (NewEngine): a vehicle feeds drive-by RSS
//     measurements into an Engine, which recovers the number and coarse
//     locations of nearby APs over a grid via ℓ1 minimization, with sliding
//     windows, BIC model selection, and credit-based consolidation.
//
//   - Offline crowdsourcing (NewServerStore / NewCrowdVehicle /
//     NewUserVehicle): a crowd-server assigns AP-pattern mapping tasks to
//     crowd-vehicles over a bipartite graph, infers each vehicle's
//     reliability with iterative message passing, and fuses uploaded AP
//     reports with reliability-weighted centroids. User-vehicles download
//     the fused lookup results for opportunistic WiFi access.
//
// Everything the evaluation depends on — dense linear algebra, sparse
// recovery solvers, the radio channel, vehicular simulators, the handoff and
// transfer studies, and the comparison baselines (LGMM, MDS, Skyhook) — is
// implemented in this module with no dependencies beyond the standard
// library. See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record.
package crowdwifi

import (
	"io"
	"net/http"

	"crowdwifi/internal/chaos"
	"crowdwifi/internal/client"
	"crowdwifi/internal/cs"
	"crowdwifi/internal/eval"
	"crowdwifi/internal/geo"
	"crowdwifi/internal/radio"
	"crowdwifi/internal/retry"
	"crowdwifi/internal/server"
	"crowdwifi/internal/sim"
	"crowdwifi/internal/topology"
	"crowdwifi/internal/traceio"
	"crowdwifi/internal/wal"
)

// Core geometric and radio types, re-exported for API stability.
type (
	// Point is a planar position in metres.
	Point = geo.Point
	// Rect is an axis-aligned rectangle.
	Rect = geo.Rect
	// Trajectory is a waypoint polyline a vehicle drives along.
	Trajectory = geo.Trajectory
	// Channel is the log-distance path loss model with shadow fading.
	Channel = radio.Channel
	// Measurement is one drive-by RSS reading.
	Measurement = radio.Measurement
)

// Online compressive sensing types.
type (
	// Engine is the vehicle-side online CS pipeline.
	Engine = cs.Engine
	// EngineConfig configures an Engine.
	EngineConfig = cs.EngineConfig
	// Estimate is a consolidated AP estimate with credit.
	Estimate = cs.Estimate
	// RoundResult reports one sliding-window round.
	RoundResult = cs.RoundResult
	// RecoveryOptions tunes a single ℓ1 grid recovery.
	RecoveryOptions = cs.RecoveryOptions
	// SelectOptions tunes BIC model-order selection.
	SelectOptions = cs.SelectOptions
)

// Middleware types.
type (
	// ServerStore is the crowd-server state (task pool, labels, reports,
	// fused AP database, reliabilities).
	ServerStore = server.Store
	// CrowdVehicle is the worker-party client.
	CrowdVehicle = client.CrowdVehicle
	// UserVehicle is the consumer-party client.
	UserVehicle = client.UserVehicle
	// Scenario is a simulated world (area, APs, channel).
	Scenario = sim.Scenario
)

// Resilience types: the fault-tolerant vehicle↔server transport
// (retries, circuit breaking, store-and-forward) and the deterministic
// fault-injection harness used to test it.
type (
	// HTTPDoer is the minimal HTTP client interface the resilience stack
	// wraps; *http.Client satisfies it.
	HTTPDoer = client.HTTPDoer
	// RetryPolicy tunes exponential backoff with full jitter.
	RetryPolicy = retry.Policy
	// Breaker is a circuit breaker that fast-fails requests to an
	// endpoint that keeps erroring, then probes for recovery.
	Breaker = retry.Breaker
	// BreakerConfig configures a Breaker.
	BreakerConfig = retry.BreakerConfig
	// Outbox is the store-and-forward queue a CrowdVehicle parks
	// undeliverable uploads in; see ErrQueued.
	Outbox = client.Outbox
	// ChaosFault is the per-request fault mix (drop, delay, 5xx,
	// truncation, reset) for the deterministic injection harness.
	ChaosFault = chaos.Fault
)

// ErrQueued reports that an upload could not be delivered and was parked in
// the vehicle's Outbox; CrowdVehicle.DrainOutbox (or process exit via
// crowdwifi-vehicle's drain) replays it with the same idempotency key.
var ErrQueued = client.ErrQueued

// NewBreaker builds a circuit breaker; the zero BreakerConfig selects
// sensible defaults.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return retry.NewBreaker(cfg)
}

// NewRetryDoer wraps next (nil selects http.DefaultClient) with
// exponential-backoff retries under policy and an optional circuit breaker
// (nil disables breaking). Assign the result to CrowdVehicle.HTTP or
// UserVehicle.HTTP to make their requests fault tolerant.
func NewRetryDoer(next HTTPDoer, policy RetryPolicy, breaker *Breaker) HTTPDoer {
	return retry.NewDoer(next, policy, retry.WithBreaker(breaker))
}

// NewOutbox builds a store-and-forward outbox (capacity ≤ 0 selects the
// default); assign it to CrowdVehicle.Outbox so failed uploads queue instead
// of erroring.
func NewOutbox(capacity int) *Outbox {
	return client.NewOutbox(capacity)
}

// NewChaosDoer wraps next with deterministic, seedable client-side fault
// injection — the same schedule for the same seed, every run.
func NewChaosDoer(next HTTPDoer, f ChaosFault, seed uint64) HTTPDoer {
	return chaos.NewInjector(next, f, seed)
}

// NewChaosMiddleware wraps an HTTP handler with deterministic server-side
// fault injection.
func NewChaosMiddleware(next http.Handler, f ChaosFault, seed uint64) http.Handler {
	return chaos.Middleware(next, f, seed)
}

// NewEngine builds the online compressive sensing engine (Section 4 of the
// paper). Feed it measurements with Engine.Add or Engine.AddBatch and read
// consolidated AP estimates with Engine.FinalEstimates.
func NewEngine(cfg EngineConfig) (*Engine, error) {
	return cs.NewEngine(cfg)
}

// NewTrajectory builds a drive route over at least two waypoints.
func NewTrajectory(waypoints []Point) (*Trajectory, error) {
	return geo.NewTrajectory(waypoints)
}

// UCIChannel returns the paper's UCI simulation channel (path loss 45.6 dB
// at 1 m, exponent 1.76, shadow fading 0.5 dB).
func UCIChannel() Channel { return radio.UCIChannel() }

// UCIScenario returns the paper's UCI campus simulation world: 8 APs on a
// 300 m × 180 m map.
func UCIScenario() Scenario { return sim.UCI() }

// NewServerStore creates crowd-server state; mergeRadius controls how close
// AP reports must be to fuse (≤ 0 selects 10 m).
func NewServerStore(mergeRadius float64) *ServerStore {
	return server.NewStore(mergeRadius)
}

// Durable storage types: the crowd-server's write-ahead log + snapshot
// subsystem (internal/wal) and its Store wiring.
type (
	// StorageOptions configures the crowd-server's durability (data
	// directory, fsync policy, segment size, snapshot retention). The zero
	// value keeps the store in memory.
	StorageOptions = server.StorageOptions
	// RecoveryStats summarizes one boot's snapshot load and WAL replay.
	RecoveryStats = server.RecoveryStats
	// WALSyncPolicy selects when WAL appends are fsynced.
	WALSyncPolicy = wal.SyncPolicy
)

// WAL fsync policies, re-exported for StorageOptions.Fsync.
const (
	// SyncAlways fsyncs every append: an acknowledged upload is durable.
	SyncAlways = wal.SyncAlways
	// SyncInterval fsyncs on a background timer.
	SyncInterval = wal.SyncInterval
	// SyncOff leaves flushing to the OS.
	SyncOff = wal.SyncOff
)

// ParseWALSyncPolicy maps "always", "interval", or "off" to a policy —
// handy for flag parsing in embedding programs.
func ParseWALSyncPolicy(s string) (WALSyncPolicy, error) {
	return wal.ParseSyncPolicy(s)
}

// OpenServerStore creates crowd-server state backed by a write-ahead log
// and snapshots in opts.Dir: the newest snapshot is loaded, the log suffix
// replayed (a torn final record is truncated, not fatal), and every later
// mutation is logged before it is acknowledged. An empty opts.Dir behaves
// exactly like NewServerStore. Pair it with NewServerHandler and call
// ServerStore.Snapshot periodically plus ServerStore.Close on shutdown.
func OpenServerStore(mergeRadius float64, opts StorageOptions) (*ServerStore, RecoveryStats, error) {
	return server.OpenStore(mergeRadius, opts)
}

// NewServerHandler wraps a store in the crowd-server's HTTP API
// (/v1/patterns, /v1/tasks, /v1/labels, /v1/reports, /v1/aggregate,
// /v1/lookup, /v1/reliability).
func NewServerHandler(store *ServerStore) http.Handler {
	return server.New(store)
}

// NewCrowdVehicle builds the worker-party client against a crowd-server.
func NewCrowdVehicle(id, baseURL string, cfg EngineConfig) (*CrowdVehicle, error) {
	return client.NewCrowdVehicle(id, baseURL, cfg)
}

// NewUserVehicle builds the consumer-party client.
func NewUserVehicle(baseURL string) *UserVehicle {
	return client.NewUserVehicle(baseURL)
}

// Aggregate asks a crowd-server to run reliability inference and weighted
// fusion now, returning the fused AP count.
func Aggregate(baseURL string) (int, error) {
	return client.Aggregate(nil, baseURL)
}

// Reliability fetches a crowd-server's per-vehicle reliability map.
func Reliability(baseURL string) (map[string]float64, error) {
	return client.Reliability(nil, baseURL)
}

// LocalizationError is the paper's normalized localization error: the mean
// optimally-matched truth↔estimate distance divided by the lattice length
// (Section 6). Multiply by 100 for the paper's percentages.
func LocalizationError(truth, estimates []Point, lattice float64) float64 {
	return eval.LocalizationError(truth, estimates, lattice)
}

// CountingError is the paper's counting error |k̂−k|/k for a single grid.
func CountingError(actual, estimated int) float64 {
	return eval.CountingError([]int{actual}, []int{estimated})
}

// MeanMatchedDistance is the average truth↔estimate distance in metres
// under optimal matching — the absolute error figure the paper quotes.
func MeanMatchedDistance(truth, estimates []Point) float64 {
	return eval.MeanMatchedDistance(truth, estimates)
}

// Topology analysis types (the WiFi topology service of Fig. 1).
type (
	// InterferenceGraph is the co-interference structure of a deployment.
	InterferenceGraph = topology.Graph
	// CoverageReport summarizes a deployment's spatial coverage.
	CoverageReport = topology.CoverageReport
)

// BuildInterferenceGraph analyzes a crowdsensed AP set: APs within
// interferenceRange of each other become neighbours.
func BuildInterferenceGraph(aps []Point, interferenceRange float64) (*InterferenceGraph, error) {
	return topology.BuildGraph(aps, interferenceRange)
}

// AnalyzeCoverage rasterizes the area and reports covered fraction, AP
// density and mean nearest-AP distance for a crowdsensed deployment.
func AnalyzeCoverage(aps []Point, area Rect, serviceRange, resolution float64) (*CoverageReport, error) {
	return topology.Coverage(aps, area, serviceRange, resolution)
}

// WriteMeasurementsCSV persists a measurement trace as CSV
// (time_s, x_m, y_m, rss_dbm, source).
func WriteMeasurementsCSV(w io.Writer, ms []Measurement) error {
	return traceio.WriteMeasurements(w, ms)
}

// ReadMeasurementsCSV parses a measurement trace written by
// WriteMeasurementsCSV (or by any collector that produces the same columns).
func ReadMeasurementsCSV(r io.Reader) ([]Measurement, error) {
	return traceio.ReadMeasurements(r)
}

// WriteEstimatesCSV persists consolidated AP estimates as CSV
// (x_m, y_m, credit).
func WriteEstimatesCSV(w io.Writer, ests []Estimate) error {
	return traceio.WriteEstimates(w, ests)
}

// ReadEstimatesCSV parses estimates written by WriteEstimatesCSV.
func ReadEstimatesCSV(r io.Reader) ([]Estimate, error) {
	return traceio.ReadEstimates(r)
}

// EstimatePositions projects estimates onto their positions.
func EstimatePositions(ests []Estimate) []Point {
	out := make([]Point, len(ests))
	for i, e := range ests {
		out[i] = e.Pos
	}
	return out
}
