module crowdwifi

go 1.22
